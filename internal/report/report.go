// Package report renders experiment results as fixed-width text tables,
// horizontal bar charts (the Figure 5 analogue) and CSV.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are printf-formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		return "| " + strings.Join(parts, " | ") + " |"
	}
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	out := []string{line(t.Headers), "|-" + strings.Join(sep, "-|-") + "-|"}
	for _, row := range t.rows {
		out = append(out, line(row))
	}
	_, err := fmt.Fprintln(w, strings.Join(out, "\n"))
	return err
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}

// CSV writes the table as comma-separated values (cells with commas or
// quotes are quoted).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				quoted[i] = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			} else {
				quoted[i] = c
			}
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	n := w - len([]rune(s))
	if n <= 0 {
		return s
	}
	return s + strings.Repeat(" ", n)
}

// BarChart renders grouped horizontal bars — the text analogue of the
// paper's Figure 5 bar groups.
type BarChart struct {
	Title string
	// Unit is appended to values, e.g. "h" or "$".
	Unit string
	// Width is the maximum bar width in characters (default 40).
	Width int
	bars  []bar
}

type bar struct {
	label string
	value float64
}

// NewBarChart creates a chart.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit, Width: 40}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.bars = append(c.bars, bar{label, value})
}

// Render writes the chart to w.
func (c *BarChart) Render(w io.Writer) error {
	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	maxLabel, maxVal := 0, 0.0
	for _, b := range c.bars {
		if len(b.label) > maxLabel {
			maxLabel = len(b.label)
		}
		if b.value > maxVal {
			maxVal = b.value
		}
	}
	width := c.Width
	if width <= 0 {
		width = 40
	}
	for _, b := range c.bars {
		n := 0
		if maxVal > 0 {
			n = int(b.value / maxVal * float64(width))
		}
		if b.value > 0 && n == 0 {
			n = 1
		}
		if _, err := fmt.Fprintf(w, "%s %s %.3f%s\n",
			pad(b.label, maxLabel), strings.Repeat("█", n), b.value, c.Unit); err != nil {
			return err
		}
	}
	return nil
}

// String renders to a string.
func (c *BarChart) String() string {
	var sb strings.Builder
	_ = c.Render(&sb)
	return sb.String()
}

// Percent formats a ratio as a percentage string, e.g. 0.25 → "25.0%".
func Percent(r float64) string { return fmt.Sprintf("%.1f%%", r*100) }
