package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// LoadPackages resolves patterns with the go command and returns every
// matched package parsed (with comments) and type-checked. Dependencies
// — standard library included — are resolved through the export data
// `go list -export` materializes in the build cache, so a whole-module
// load costs one build's worth of cached compilation, not a from-source
// re-typecheck of the world.
//
// moduleDir must be inside the module the patterns refer to. Wildcard
// patterns such as ./... skip testdata directories (the go tool's own
// rule), which is what keeps analyzer fixture packages with intentional
// violations out of a repo-wide lint run; explicit directory arguments
// — the form the analysistest harness uses — still load them.
func LoadPackages(moduleDir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=Dir,ImportPath,Name,Export,GoFiles,CgoFiles,Standard,DepOnly,Incomplete,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var out, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	// One importer instance for the whole load: every target resolves
	// its dependencies against the same cached *types.Package objects.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, lp := range targets {
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("package %s uses cgo, which the analysis loader does not support", lp.ImportPath)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:      lp.ImportPath,
			Dir:       lp.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
