package hotpath_test

import (
	"testing"

	"vmcloud/internal/analysis/analysistest"
	"vmcloud/internal/analysis/passes/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotpath.Analyzer, "hp")
}
