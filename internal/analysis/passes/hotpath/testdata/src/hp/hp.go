// Package hp is the hotpath analyzer's fixture: each banned construct
// appears once in a marked function (flagged), once in an unmarked one
// (ignored), and once behind the //mvlint:allow escape hatch.
package hp

import (
	"fmt"
	"sync"
	"sync/atomic"
)

var mu sync.Mutex

//mvlint:hotpath
func closures(xs []int) int {
	f := func(a int) int { return a + 1 } // want `closure allocated in hotpath function closures`
	return f(xs[0])
}

//mvlint:hotpath
func deferred() {
	mu.Lock()
	defer mu.Unlock() // want `defer in hotpath function deferred`
}

//mvlint:hotpath
func formatted(n int) error {
	if n < 0 {
		return fmt.Errorf("negative: %d", n) // want `fmt\.Errorf in hotpath function formatted allocates on every call`
	}
	return nil
}

//mvlint:hotpath
func concat(a, b string) string {
	return a + b // want `string concatenation in hotpath function concat allocates`
}

//mvlint:hotpath
func concatAssign(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p // want `string concatenation in hotpath function concatAssign allocates`
	}
	return s
}

//mvlint:hotpath
func clean(dst []byte, a, b string) []byte {
	dst = append(dst[:0], a...) // pooled-buffer key building is the sanctioned form
	dst = append(dst, b...)
	return dst
}

// cold is unmarked: the same constructs are fine off the hot path.
func cold(a, b string) string {
	mu.Lock()
	defer mu.Unlock()
	return fmt.Sprintf("%s%s", a, b)
}

//mvlint:hotpath
func allowedDefer() {
	mu.Lock()
	defer mu.Unlock() //mvlint:allow hotpath -- fixture: proves the escape hatch suppresses the finding
}

// instrument mirrors internal/obs: a telemetry series resolved at
// registration time, recorded with plain atomic ops.
type instrument struct {
	n   atomic.Int64
	sum atomic.Int64
}

// record is the sanctioned telemetry idiom for marked functions —
// atomic adds on a pre-resolved series, no labels, no maps, no
// formatting. This fixture pins that the analyzer accepts it unchanged.
//
//mvlint:hotpath
func record(ins *instrument, d int64) {
	if d < 0 {
		d = 0
	}
	ins.n.Add(1)
	ins.sum.Add(d)
}
