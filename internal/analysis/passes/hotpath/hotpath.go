// Package hotpath machine-enforces the zero-alloc serving contracts.
//
// The cache-hit fast path, the search delta-probe loops and the
// RepriceFor kernel sessions are pinned at (near-)zero allocations per
// operation by committed benchmarks and alloc-budget tests. Those tests
// catch regressions after the fact; this analyzer catches the four
// construct classes that caused every historical regression at compile
// review time, in any function whose doc comment carries
// //mvlint:hotpath:
//
//   - function literals — a closure in a hot function usually means a
//     per-call allocation (and did, before the slow paths became static
//     top-level functions);
//   - defer — fine in cold code, but the marked functions run millions
//     of times per load run and several are too simple to amortize the
//     deferred-call bookkeeping (and a deferred closure also allocates);
//   - calls into package fmt — fmt formats through reflection and
//     allocates on every call, error paths included;
//   - string concatenation (+ / += on strings) — each one is a fresh
//     allocation; hot keys are built in pooled []byte buffers instead.
//
// The marker is a contract, not a hint: adding //mvlint:hotpath to a
// function that violates it fails the build until the function is
// restructured or the violation carries
// //mvlint:allow hotpath -- <reason>.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"vmcloud/internal/analysis"
)

// Analyzer is the hot-path allocation-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "forbids closures, defer, fmt.* and string concatenation in functions marked //mvlint:hotpath",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.HotpathMarked(fn) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocated in hotpath function %s; hoist it to a static top-level function", name)
			return false // the closure's own body is cold by definition once hoisted
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hotpath function %s; unlock/cleanup explicitly on every return", name)
		case *ast.CallExpr:
			if callee := pass.CalleeFunc(n); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
				pass.Reportf(n.Pos(), "fmt.%s in hotpath function %s allocates on every call; use a static error or preformatted bytes", callee.Name(), name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypeOf(n.X)) {
				pass.Reportf(n.Pos(), "string concatenation in hotpath function %s allocates; build keys in a pooled []byte buffer", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(), "string concatenation in hotpath function %s allocates; build keys in a pooled []byte buffer", name)
			}
		}
		return true
	})
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
