// Package det is the determinism analyzer's fixture: each construct
// the contract bans appears once flagged, once in its sanctioned form,
// and once behind the //mvlint:allow escape hatch.
package det

import (
	"math/rand"
	"time"
)

func clock() int64 {
	t := time.Now() // want `time\.Now makes solver output depend on the wall clock`
	return t.Unix()
}

func globalRand() int {
	return rand.Intn(10) // want `rand\.Intn draws from the unseeded global source`
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // seeded constructors are the sanctioned form
	return r.Intn(10)                   // generator methods never touch the global source
}

func mapRangeAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is random, and this loop feeds it into a call to append`
		out = append(out, k)
	}
	return out
}

func mapRangeSum(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative aggregation cannot observe order
		total += v
	}
	return total
}

func mapRangePrune(m map[string]int) {
	for k, v := range m { // delete/len are order-free builtins
		if v == 0 && len(m) > 1 {
			delete(m, k)
		}
	}
}

func mapRangeReturn(m map[string]int) string {
	for k := range m { // want `map iteration order is random, and this loop feeds it into an order-dependent early return`
		return k
	}
	return ""
}

func allowedClock() time.Time {
	//mvlint:allow determinism -- fixture: proves the escape hatch suppresses the finding
	return time.Now()
}
