// Package determinism bans wall-clock reads, unseeded randomness and
// order-sensitive map iteration in the solver packages whose byte-exact
// output the repo's goldens pin.
//
// Every recommendation, golden response and committed experiment table
// depends on internal/{optimizer,search,compare,lattice,core} being
// pure functions of (request, seed) — and the cluster routing plane
// depends on internal/shard the same way: the rendezvous ring must
// route a key identically on every frontend, and the health tracker is
// a pure state machine fed explicit clocks (time.Now inside it would
// make detector transitions unreproducible in tests). Identical inputs
// must produce identical bytes: the canonical memoization keys,
// the seeded-search determinism tests and the cross-provider
// equivalence suites all assume identical inputs produce identical
// bytes. The three ways that property has historically rotted in
// codebases like this are time.Now creeping into a cost term, the
// global math/rand source (seeded per-process, shared across
// goroutines), and map iteration feeding anything ordered — output
// rows, cache keys, candidate lists.
//
// Contract enforced per package in scope:
//
//   - no calls to time.Now;
//   - no package-level math/rand or math/rand/v2 functions (they draw
//     from the unseeded global source) — construct an explicit
//     rand.New(rand.NewSource(seed));
//   - a range over a map may only aggregate order-insensitively:
//     assignments, scalar accumulation and delete/len/cap/min/max are
//     fine, but any other call (append included), send or return inside
//     the loop is flagged — collect keys, sort, then iterate instead.
//
// Intentional exceptions carry
// //mvlint:allow determinism -- <reason> on the flagged line.
package determinism

import (
	"go/ast"
	"go/types"

	"vmcloud/internal/analysis"
)

// Analyzer is the determinism invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "bans time.Now, unseeded math/rand and order-sensitive map iteration in solver packages",
	Scope: []string{
		"internal/optimizer",
		"internal/search",
		"internal/compare",
		"internal/lattice",
		"internal/core",
		"internal/shard",
	},
	Run: run,
}

// seededConstructors are the math/rand entry points that build an
// explicitly seeded generator rather than drawing from the global
// source.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Methods (rand.Rand.Intn etc.) are fine — reaching one requires a
	// constructed, seeded generator. Only package-level functions touch
	// the global source.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(), "time.Now makes solver output depend on the wall clock; thread the timestamp in from the serving layer")
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "%s.%s draws from the unseeded global source; use rand.New(rand.NewSource(seed)) so identical seeds replay identical solves", fn.Pkg().Name(), fn.Name())
		}
	}
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if bad := orderSensitive(pass, rs.Body); bad != nil {
		pass.Reportf(rs.Pos(), "map iteration order is random, and this loop feeds it into %s; iterate a sorted key slice instead", bad.desc)
	}
}

type sensitiveOp struct {
	desc string
}

// orderSensitive reports the first operation in a map-range body whose
// effect depends on iteration order, or nil when the body only
// aggregates commutatively.
func orderSensitive(pass *analysis.Pass, body *ast.BlockStmt) *sensitiveOp {
	var found *sensitiveOp
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isOrderFreeBuiltin(pass, n) {
				return true
			}
			desc := "a call"
			if fn := pass.CalleeFunc(n); fn != nil {
				desc = "a call to " + fn.Name()
			} else if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				desc = "a call to " + id.Name
			}
			found = &sensitiveOp{desc: desc}
			return false
		case *ast.SendStmt:
			found = &sensitiveOp{desc: "a channel send"}
			return false
		case *ast.ReturnStmt:
			found = &sensitiveOp{desc: "an order-dependent early return"}
			return false
		}
		return true
	})
	return found
}

// isOrderFreeBuiltin recognizes the builtins whose use inside a map
// range cannot observe iteration order.
func isOrderFreeBuiltin(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	switch id.Name {
	case "delete", "len", "cap", "min", "max":
		return true
	}
	return false
}
