package determinism_test

import (
	"testing"

	"vmcloud/internal/analysis/analysistest"
	"vmcloud/internal/analysis/passes/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "det")
}
