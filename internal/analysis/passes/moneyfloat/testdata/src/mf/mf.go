// Package mf is the moneyfloat analyzer's fixture: every float detour
// around the Money API appears once flagged, once in its exact
// sanctioned form, and once behind the //mvlint:allow escape hatch.
package mf

import "vmcloud/internal/money"

const tariff = 0.12

func convert(m money.Money) float64 {
	return float64(m) // want `raw float conversion of money\.Money bypasses exact arithmetic`
}

func rebuild(hours float64) money.Money {
	return money.FromDollars(hours * tariff) // want `money\.FromDollars on a computed value rebuilds money from float arithmetic`
}

func fixtureTariff() money.Money {
	return money.FromDollars(0.12) // literal tariff constants are exact by inspection
}

func scale(m money.Money, hours float64) money.Money {
	return m.MulFloat(hours) // the sanctioned money-times-float API
}

func cheaper(a, b money.Money) bool {
	return a.Dollars() < b.Dollars() // want `comparing money in float space via Dollars\(\)`
}

func cheaperExact(a, b money.Money) bool {
	return a.Cmp(b) < 0 // Money compares exactly
}

func span(a, b money.Money) float64 {
	return a.Dollars() - b.Dollars() // want `float arithmetic between two money amounts`
}

func spanExact(a, b money.Money) float64 {
	return a.Sub(b).Dollars() // compute in Money, convert once for display
}

func score(alpha, t float64, c money.Money) float64 {
	return alpha*t + (1-alpha)*c.Dollars() // mixed objective-space scoring is floats by design
}

func allowedConvert(m money.Money) float64 {
	//mvlint:allow moneyfloat -- fixture: proves the escape hatch suppresses the finding
	return float64(m)
}
