// Package moneyfloat keeps billing arithmetic exact: money.Money is
// micro-dollar fixed point precisely because float drift is
// unacceptable when reproducing a provider's invoice, so float
// detours around the Money API are confined to internal/money and
// internal/units (which own the sanctioned conversions).
//
// Flagged everywhere else:
//
//   - float64(m)/float32(m) conversions of a money.Money value — they
//     bypass even the display-only Dollars() accessor;
//   - money.FromDollars with a computed (non-constant) argument —
//     rebuilding money from float arithmetic reintroduces the drift
//     the type exists to prevent (literal tariff constants in fixtures
//     are fine);
//   - comparisons where either side is a Dollars() call — compare in
//     Money (<, Cmp), not in float space;
//   - arithmetic whose operands are BOTH money-derived floats
//     (Dollars() calls) — that is money math and belongs in
//     Add/Sub/MulInt/MulFloat.
//
// Mixed objective-space scoring (alpha*time + (1-alpha)*cost.Dollars())
// is deliberately not flagged: scores are floats by design; only
// money-to-money float math is.
//
// Intentional exceptions carry
// //mvlint:allow moneyfloat -- <reason> on the flagged line.
package moneyfloat

import (
	"go/ast"
	"go/token"
	"go/types"

	"vmcloud/internal/analysis"
)

// Analyzer is the exact-money invariant checker.
var Analyzer = &analysis.Analyzer{
	Name:    "moneyfloat",
	Doc:     "bans raw float conversion, comparison and arithmetic on money-typed values outside internal/money and internal/units",
	Exclude: []string{"internal/money", "internal/units"},
	Run:     run,
}

const moneyPkgPath = "vmcloud/internal/money"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkConversion(pass, n)
				checkFromDollars(pass, n)
			case *ast.BinaryExpr:
				checkBinary(pass, n)
			}
			return true
		})
	}
	return nil
}

// isMoney reports whether t is (or points to) money.Money.
func isMoney(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Money" && obj.Pkg() != nil && obj.Pkg().Path() == moneyPkgPath
}

// checkConversion flags float64(m) / float32(m) where m is money.Money.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return
	}
	if at := pass.TypeOf(call.Args[0]); at != nil && isMoney(at) {
		pass.Reportf(call.Pos(), "raw float conversion of money.Money bypasses exact arithmetic; use Money methods (Add/Sub/MulInt/MulFloat, Cmp) or Dollars() strictly for display")
	}
}

// checkFromDollars flags money.FromDollars on computed values.
func checkFromDollars(pass *analysis.Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Name() != "FromDollars" || fn.Pkg() == nil || fn.Pkg().Path() != moneyPkgPath {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
		return // constant literal — fixture/tariff constants are exact by inspection
	}
	pass.Reportf(call.Pos(), "money.FromDollars on a computed value rebuilds money from float arithmetic; keep the computation in Money")
}

// isDollarsCall reports whether e (unparenthesized) is a call to
// money.Money.Dollars.
func isDollarsCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Name() != "Dollars" || fn.Pkg() == nil || fn.Pkg().Path() != moneyPkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

func checkBinary(pass *analysis.Pass, be *ast.BinaryExpr) {
	switch be.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		if isDollarsCall(pass, be.X) || isDollarsCall(pass, be.Y) {
			pass.Reportf(be.Pos(), "comparing money in float space via Dollars(); compare Money values directly (they are exact integers)")
		}
	case token.ADD, token.SUB, token.MUL, token.QUO:
		if isDollarsCall(pass, be.X) && isDollarsCall(pass, be.Y) {
			pass.Reportf(be.Pos(), "float arithmetic between two money amounts; compute in Money (Add/Sub/DivInt) and convert once for display")
		}
	}
}
