package moneyfloat_test

import (
	"testing"

	"vmcloud/internal/analysis/analysistest"
	"vmcloud/internal/analysis/passes/moneyfloat"
)

func TestMoneyFloat(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), moneyfloat.Analyzer, "mf")
}
