package noretain_test

import (
	"testing"

	"vmcloud/internal/analysis/analysistest"
	"vmcloud/internal/analysis/passes/noretain"
)

func TestNoRetain(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), noretain.Analyzer, "nr")
}
