// Package nr is the noretain analyzer's fixture: every escape class
// appears once flagged, the sanctioned lending idioms (in-place
// mutation, recycle, copy-out) appear unflagged, and one escape rides
// the //mvlint:allow hatch.
package nr

import "sync"

type cache struct {
	data map[string][]byte
}

// view lends the cached bytes; the alias is valid only until the
// caller returns.
func (c *cache) view(key string) ([]byte, bool) {
	b, ok := c.data[key]
	return b, ok
}

// Put takes ownership of val.
func (c *cache) Put(key string, val []byte) { c.data[key] = val }

type scratch struct {
	buf []byte
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

var sink []byte

func use([]byte) {}

func leakReturn(c *cache, key string) []byte {
	b, _ := c.view(key)
	return b // want `returning cache view buffer escapes it past its contract scope`
}

func leakGlobal(c *cache, key string) {
	b, _ := c.view(key)
	sink = b // want `cache view buffer stored in package-level variable sink`
}

func leakMap(c *cache, key string, out map[string][]byte) {
	b, _ := c.view(key)
	out[key] = b // want `cache view buffer stored into a map`
}

func leakGoroutine(c *cache, key string) {
	b, _ := c.view(key)
	go use(b) // want `cache view buffer passed to a goroutine`
}

func leakAppend(c *cache, key string, rows [][]byte) [][]byte {
	b, _ := c.view(key)
	return append(rows, b) // want `cache view buffer appended as an element into another slice`
}

func leakPut(c *cache, key string) {
	b, _ := c.view(key)
	c.Put("copy", b) // want `cache view buffer handed to .*cache\)\.Put transfers ownership`
}

func leakPool() *scratch {
	sc := pool.Get().(*scratch)
	return sc // want `returning sync\.Pool-backed scratch escapes it past its contract scope`
}

func recycle() {
	sc := pool.Get().(*scratch)
	sc.buf = append(sc.buf[:0], 'x') // mutating the borrowed object is using the loan
	pool.Put(sc)                     // the recycle idiom, not a retention
}

func copyOut(c *cache, key string) []byte {
	b, _ := c.view(key)
	out := make([]byte, len(b))
	copy(out, b)
	return out // the copy is free of the loan
}

func spreadCopy(c *cache, key string, dst []byte) []byte {
	b, _ := c.view(key)
	return append(dst[:0], b...) // spread copies the bytes and launders the taint
}

func allowedReturn(c *cache, key string) []byte {
	b, _ := c.view(key)
	//mvlint:allow noretain -- fixture: proves the escape hatch suppresses the finding
	return b
}
