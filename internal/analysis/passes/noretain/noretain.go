// Package noretain machine-enforces the zero-copy lending contracts
// introduced with the allocation-free cache-hit path: borrowed buffers
// must not outlive the scope they were lent for.
//
// Two kinds of values are tracked, per function:
//
//   - results of a method named view returning []byte — the
//     lruCache.view contract: the slice aliases cache-owned memory and
//     is valid only until the request returns;
//   - values obtained from (*sync.Pool).Get, and anything reached
//     through them (fields, subslices) — pooled scratch is recycled the
//     moment it is Put back, so an alias that survives the function is
//     a use-after-reuse bug waiting for load.
//
// A tracked value (or a slice/field/alias derived from it) is flagged
// when it can outlive its contract scope: returned, stored into
// package-level state, written through a pointer or into a map, sent on
// a channel, captured by a go statement, appended as an element into
// another slice, or handed to a Put method that takes ownership
// (returning pooled scratch to its own sync.Pool is, of course, the
// contract itself, not a violation). `string(buf)` conversions and
// `append(dst, buf...)` spreads copy the bytes and launder the taint.
//
// The analysis is intentionally intra-procedural and first-order: it
// proves the cheap 95% mechanically and leaves documented exceptions to
// //mvlint:allow noretain -- <reason>.
package noretain

import (
	"go/ast"
	"go/token"
	"go/types"

	"vmcloud/internal/analysis"
)

// Analyzer is the borrowed-buffer retention checker.
var Analyzer = &analysis.Analyzer{
	Name: "noretain",
	Doc:  "flags retention or escape of lruCache.view buffers and sync.Pool-backed scratch past their contract scope",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFunc(pass, fn)
			}
		}
	}
	return nil
}

// tracker carries the per-function taint state.
type tracker struct {
	pass *analysis.Pass
	// vals maps a tainted variable to a human description of its origin.
	vals map[types.Object]string
	// poolRoots are the objects assigned directly from (*sync.Pool).Get;
	// putting one of these back into a pool is the recycle idiom.
	poolRoots map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	tr := &tracker{
		pass:      pass,
		vals:      make(map[types.Object]string),
		poolRoots: make(map[types.Object]bool),
	}
	// ast.Inspect visits statements in source order, so taint introduced
	// by an assignment is visible to every later use in straight-line
	// code — good enough for the lending scopes this enforces.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			tr.assign(n)
		case *ast.ReturnStmt:
			tr.ret(n)
		case *ast.SendStmt:
			if desc, ok := tr.tracked(n.Value); ok {
				pass.Reportf(n.Pos(), "%s sent on a channel escapes its contract scope; copy it first", desc)
			}
		case *ast.GoStmt:
			tr.goStmt(n)
		case *ast.CallExpr:
			tr.call(n)
		}
		return true
	})
}

// origin classifies the RHS of an assignment as a taint source and
// returns its description.
func (tr *tracker) origin(e ast.Expr) (desc string, pool bool, ok bool) {
	e = ast.Unparen(e)
	if ta, isAssert := e.(*ast.TypeAssertExpr); isAssert {
		e = ast.Unparen(ta.X)
	}
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	fn := tr.pass.CalleeFunc(call)
	if fn == nil {
		return "", false, false
	}
	if fn.FullName() == "(*sync.Pool).Get" {
		return "sync.Pool-backed scratch", true, true
	}
	if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil && fn.Name() == "view" &&
		sig.Results().Len() > 0 && isByteSlice(sig.Results().At(0).Type()) {
		return "cache view buffer", false, true
	}
	return "", false, false
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}

func (tr *tracker) assign(as *ast.AssignStmt) {
	// Taint introduction: v, ok := x.view(k) / sc := pool.Get().(*T).
	if len(as.Rhs) == 1 {
		if desc, pool, ok := tr.origin(as.Rhs[0]); ok && len(as.Lhs) >= 1 {
			if id, isIdent := ast.Unparen(as.Lhs[0]).(*ast.Ident); isIdent {
				if obj := tr.objectOf(id); obj != nil {
					tr.vals[obj] = desc
					if pool {
						tr.poolRoots[obj] = true
					}
					return
				}
			}
		}
	}
	// Taint propagation and escape checks, pairwise.
	for i, rhs := range as.Rhs {
		if len(as.Lhs) != len(as.Rhs) {
			break
		}
		desc, ok := tr.tracked(rhs)
		if !ok {
			continue
		}
		tr.store(as.Lhs[i], rhs, desc, as.Pos())
	}
}

// store handles `lhs = rhs` where rhs carries taint desc.
func (tr *tracker) store(lhs, rhs ast.Expr, desc string, pos token.Pos) {
	lhs = ast.Unparen(lhs)
	// Writing a value derived from a root back into that same root
	// (rb.b = append(rb.b[:0], ...)) mutates the borrowed object in
	// place — that is using the loan, not extending it.
	if lr, rr := tr.rootObj(lhs), tr.rootObjExpr(rhs); lr != nil && lr == rr {
		return
	}
	switch l := lhs.(type) {
	case *ast.Ident:
		obj := tr.objectOf(l)
		if obj == nil {
			return
		}
		if isPackageLevel(obj) {
			tr.pass.Reportf(pos, "%s stored in package-level variable %s outlives its contract scope; copy it first", desc, l.Name)
			return
		}
		tr.vals[obj] = desc // local alias: propagate the taint
	case *ast.SelectorExpr:
		tr.storeThrough(l.X, desc, pos)
	case *ast.IndexExpr:
		if t := tr.pass.TypeOf(l.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				tr.pass.Reportf(pos, "%s stored into a map outlives its contract scope; copy it first", desc)
				return
			}
		}
		tr.storeThrough(l.X, desc, pos)
	case *ast.StarExpr:
		tr.pass.Reportf(pos, "%s stored through a pointer escapes its contract scope; copy it first", desc)
	}
}

// storeThrough flags stores whose base is caller-visible: a
// package-level variable or anything reached through a pointer. Fields
// and elements of plain local values are fine — they die with the
// frame (the probeState idiom: view aliases carried in a by-value
// struct for the duration of one request).
func (tr *tracker) storeThrough(base ast.Expr, desc string, pos token.Pos) {
	root := tr.rootObj(base)
	if root == nil {
		tr.pass.Reportf(pos, "%s stored into caller-visible state outlives its contract scope; copy it first", desc)
		return
	}
	if isPackageLevel(root) {
		tr.pass.Reportf(pos, "%s stored into package-level state (%s) outlives its contract scope; copy it first", desc, root.Name())
		return
	}
	// Mutating a borrowed object itself is using the loan, not
	// extending it.
	if _, borrowed := tr.vals[root]; borrowed {
		return
	}
	// A pointer-typed root reaches memory the caller (or another
	// goroutine) can already see.
	if _, isPtr := root.Type().Underlying().(*types.Pointer); isPtr {
		tr.pass.Reportf(pos, "%s stored through pointer %s escapes its contract scope; copy it first", desc, root.Name())
	}
}

func (tr *tracker) ret(rs *ast.ReturnStmt) {
	for _, res := range rs.Results {
		desc, ok := tr.tracked(res)
		if !ok {
			continue
		}
		if t := tr.pass.TypeOf(res); t != nil && isReferenceShaped(t) {
			tr.pass.Reportf(rs.Pos(), "returning %s escapes it past its contract scope; return a copy", desc)
		}
	}
}

func (tr *tracker) goStmt(gs *ast.GoStmt) {
	// A goroutine outlives any lending scope: flag tracked call args and
	// tracked variables captured by a func-literal body.
	for _, arg := range gs.Call.Args {
		if desc, ok := tr.tracked(arg); ok {
			tr.pass.Reportf(gs.Pos(), "%s passed to a goroutine may outlive its contract scope; copy it first", desc)
		}
	}
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, isIdent := n.(*ast.Ident)
			if !isIdent {
				return true
			}
			if obj := tr.objectOf(id); obj != nil {
				if desc, tainted := tr.vals[obj]; tainted {
					tr.pass.Reportf(id.Pos(), "%s captured by a goroutine may outlive its contract scope; copy it before spawning", desc)
				}
			}
			return true
		})
	}
}

func (tr *tracker) call(call *ast.CallExpr) {
	// append(dst, buf) aliases buf as an element of a possibly
	// longer-lived slice; append(dst, buf...) copies the bytes.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := tr.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && call.Ellipsis == token.NoPos {
			for _, arg := range call.Args[1:] {
				if desc, tracked := tr.tracked(arg); tracked {
					tr.pass.Reportf(call.Pos(), "%s appended as an element into another slice aliases it past its contract scope; append a copy", desc)
				}
			}
		}
		return
	}
	// Put methods take ownership (lruCache.Put documents exactly this);
	// handing them a borrowed buffer retains it. Returning pooled
	// scratch to its sync.Pool is the recycle idiom, not a retention.
	fn := tr.pass.CalleeFunc(call)
	if fn == nil || fn.Name() != "Put" {
		return
	}
	isPoolPut := fn.FullName() == "(*sync.Pool).Put"
	for _, arg := range call.Args {
		desc, tracked := tr.tracked(arg)
		if !tracked {
			continue
		}
		if isPoolPut {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := tr.objectOf(id); obj != nil && tr.poolRoots[obj] {
					continue
				}
			}
		}
		tr.pass.Reportf(call.Pos(), "%s handed to %s transfers ownership of a borrowed buffer; copy it first", desc, fn.FullName())
	}
}

// tracked reports whether e is (derived from) a tracked value.
func (tr *tracker) tracked(e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if obj := tr.objectOf(e); obj != nil {
			desc, ok := tr.vals[obj]
			return desc, ok
		}
	case *ast.SliceExpr:
		return tr.tracked(e.X)
	case *ast.SelectorExpr:
		return tr.tracked(e.X)
	case *ast.StarExpr:
		return tr.tracked(e.X)
	case *ast.TypeAssertExpr:
		return tr.tracked(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return tr.tracked(e.X)
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if desc, ok := tr.tracked(v); ok {
				return desc, true
			}
		}
	case *ast.CallExpr:
		// Only append propagates the alias; every other call result
		// (string(...), x.Bytes(), h.Get(...)) is treated as laundered.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := tr.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(e.Args) > 0 {
				return tr.tracked(e.Args[0])
			}
		}
	}
	return "", false
}

// rootObj resolves the base identifier of an lvalue chain
// (a.b[i].c → a), or nil.
func (tr *tracker) rootObj(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return tr.objectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.CallExpr:
			// append(root, ...) — the result shares root's backing.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
				e = x.Args[0]
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

func (tr *tracker) rootObjExpr(e ast.Expr) types.Object { return tr.rootObj(e) }

func (tr *tracker) objectOf(id *ast.Ident) types.Object {
	if obj := tr.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return tr.pass.TypesInfo.Defs[id]
}

func isPackageLevel(obj types.Object) bool {
	return obj.Parent() != nil && obj.Parent().Parent() == types.Universe
}

// isReferenceShaped reports whether a value of type t can alias the
// tracked buffer after being returned: anything but a plain scalar or
// string (which are copies by the time they are values).
func isReferenceShaped(t types.Type) bool {
	_, isBasic := t.Underlying().(*types.Basic)
	return !isBasic
}
