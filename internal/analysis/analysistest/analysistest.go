// Package analysistest runs one analyzer over a fixture package under
// testdata/src/<name> and matches its diagnostics against // want
// comments, mirroring golang.org/x/tools/go/analysis/analysistest on
// top of this repo's stdlib-only analysis framework.
//
// Expectation syntax, on the line the diagnostic lands on:
//
//	x := bad() // want `regexp`
//	y := worse() // want "first" "second"
//
// Each quoted string is an anchored-nowhere regexp that must match
// exactly one diagnostic on that line; unmatched expectations and
// unexpected diagnostics both fail the test. Suppression is live:
// a finding silenced by //mvlint:allow needs no want comment — which is
// how fixtures prove the escape hatch works.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"vmcloud/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads testdata/src/<pkgname>, applies the analyzer (plus
// directive validation and //mvlint:allow suppression, exactly as the
// driver does), and checks every diagnostic against the fixture's
// // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgname string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkgname)
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("fixture package: %v", err)
	}
	moduleDir, err := analysis.ModuleRoot(dir)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(moduleDir, dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadPackages(moduleDir, []string{"./" + filepath.ToSlash(rel)})
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	diags, err := analysis.CheckPackage(pkg, []*analysis.Analyzer{a}, analysis.KnownNames([]*analysis.Analyzer{a}))
	if err != nil {
		t.Fatal(err)
	}
	checkExpectations(t, pkg, diags)
}

type key struct {
	file string
	line int
}

func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		collectWants(t, pkg.Fset, f, wants)
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				wants[k][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
			}
		}
	}
}

func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, wants map[key][]*regexp.Regexp) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			idx := strings.Index(text, "want ")
			if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
				continue
			}
			pos := fset.Position(c.Pos())
			k := key{pos.Filename, pos.Line}
			rest := strings.TrimSpace(text[idx+len("want "):])
			for rest != "" {
				lit, remainder, err := cutStringLit(rest)
				if err != nil {
					t.Fatalf("%s:%d: malformed want comment: %v", pos.Filename, pos.Line, err)
				}
				re, err := regexp.Compile(lit)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
				}
				wants[k] = append(wants[k], re)
				rest = strings.TrimSpace(remainder)
			}
		}
	}
}

// cutStringLit splits one leading Go string literal ("..." or `...`)
// off s.
func cutStringLit(s string) (lit, rest string, err error) {
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string in %q", s)
		}
		return s[1 : 1+end], s[end+2:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				lit, err := strconv.Unquote(s[:i+1])
				return lit, s[i+1:], err
			}
		}
		return "", "", fmt.Errorf("unterminated string in %q", s)
	default:
		return "", "", fmt.Errorf("expected string literal at %q", s)
	}
}
