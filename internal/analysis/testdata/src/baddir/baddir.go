// Package baddir fixes in place the failure mode mvlint directives are
// designed against: a typoed suppression that would otherwise silently
// stop suppressing. The spaced comment below must surface as a
// directive diagnostic AND leave the defer finding live.
package baddir

import "sync"

var mu sync.Mutex

//mvlint:hotpath
func locked() {
	mu.Lock()
	// mvlint:allow hotpath -- the space after // makes this a typo, not a directive
	defer mu.Unlock()
}
