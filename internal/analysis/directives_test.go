package analysis_test

import (
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"

	"vmcloud/internal/analysis"
	"vmcloud/internal/analysis/passes/hotpath"
)

var knownAnalyzers = map[string]bool{"determinism": true, "hotpath": true}

func parseDirectives(t *testing.T, comment string) ([]analysis.Directive, []analysis.Diagnostic) {
	t.Helper()
	src := "package p\n\n" + comment + "\nvar x = 1\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
	return analysis.ParseDirectives(fset, f, knownAnalyzers)
}

func TestParseDirectivesValid(t *testing.T) {
	cases := []struct {
		comment string
		want    analysis.Directive
	}{
		{
			comment: "//mvlint:allow determinism -- seeded in the caller",
			want:    analysis.Directive{Verb: analysis.VerbAllow, Analyzer: "determinism", Reason: "seeded in the caller"},
		},
		{
			comment: "//mvlint:allow hotpath -- cold error path, measured",
			want:    analysis.Directive{Verb: analysis.VerbAllow, Analyzer: "hotpath", Reason: "cold error path, measured"},
		},
		{
			comment: "//mvlint:hotpath",
			want:    analysis.Directive{Verb: analysis.VerbHotpath},
		},
	}
	for _, tc := range cases {
		dirs, diags := parseDirectives(t, tc.comment)
		if len(diags) != 0 {
			t.Errorf("%q: unexpected diagnostics: %v", tc.comment, diags)
			continue
		}
		if len(dirs) != 1 {
			t.Errorf("%q: got %d directives, want 1", tc.comment, len(dirs))
			continue
		}
		d := dirs[0]
		if d.Verb != tc.want.Verb || d.Analyzer != tc.want.Analyzer || d.Reason != tc.want.Reason {
			t.Errorf("%q: parsed %+v, want %+v", tc.comment, d, tc.want)
		}
	}
}

// TestParseDirectivesMalformed pins the contract that a directive which
// cannot be parsed becomes a hard diagnostic — never a silent no-op
// that stops suppressing.
func TestParseDirectivesMalformed(t *testing.T) {
	cases := []struct {
		comment string
		wantMsg string
	}{
		{"// mvlint:allow determinism -- x", "no space between // and mvlint:"},
		{"/* mvlint:allow determinism -- x */", "must be //-style line comments"},
		{"//mvlint:hotpath always", "takes no arguments"},
		{"//mvlint:allow", "needs an analyzer name"},
		{"//mvlint:allow determinism hotpath -- both", "exactly one analyzer name"},
		{"//mvlint:allow frobnicator -- nope", `unknown analyzer "frobnicator"`},
		{"//mvlint:allow determinism", "needs a justification"},
		{"//mvlint:allow determinism --", "needs a justification"},
		{"//mvlint:allow determinism --   ", "needs a justification"},
		{"//mvlint:suppress determinism -- x", "unknown mvlint directive"},
	}
	for _, tc := range cases {
		dirs, diags := parseDirectives(t, tc.comment)
		if len(dirs) != 0 {
			t.Errorf("%q: malformed directive parsed as %+v", tc.comment, dirs)
		}
		if len(diags) != 1 {
			t.Errorf("%q: got %d diagnostics, want 1 (%v)", tc.comment, len(diags), diags)
			continue
		}
		d := diags[0]
		if d.Analyzer != analysis.DirectiveAnalyzerName {
			t.Errorf("%q: diagnostic attributed to %q, want %q", tc.comment, d.Analyzer, analysis.DirectiveAnalyzerName)
		}
		if !strings.Contains(d.Message, tc.wantMsg) {
			t.Errorf("%q: diagnostic %q does not mention %q", tc.comment, d.Message, tc.wantMsg)
		}
	}
}

// TestParseDirectivesUnknownSetNil checks that a nil known set skips
// name validation (used by tooling that parses before analyzers are
// registered) while still enforcing the grammar.
func TestParseDirectivesUnknownSetNil(t *testing.T) {
	src := "package p\n\n//mvlint:allow anything -- reason\nvar x = 1\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	dirs, diags := analysis.ParseDirectives(fset, f, nil)
	if len(diags) != 0 || len(dirs) != 1 {
		t.Fatalf("nil known set: dirs=%v diags=%v", dirs, diags)
	}
}

// TestCheckPackageRejectsMalformedDirective proves the driver surfaces
// a malformed directive as a finding on a real loaded package: the
// fixture under testdata/src/baddir carries a misspelled (spaced) allow
// and the banned construct the typo fails to suppress.
func TestCheckPackageRejectsMalformedDirective(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	moduleDir, err := analysis.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadPackages(moduleDir, []string{"./internal/analysis/testdata/src/baddir"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	suite := []*analysis.Analyzer{hotpath.Analyzer}
	diags, err := analysis.CheckPackage(pkgs[0], suite, analysis.KnownNames(suite))
	if err != nil {
		t.Fatal(err)
	}
	var sawDirective, sawUnsuppressed bool
	for _, d := range diags {
		if d.Analyzer == analysis.DirectiveAnalyzerName && strings.Contains(d.Message, "no space between") {
			sawDirective = true
		}
		if d.Analyzer == "hotpath" {
			sawUnsuppressed = true
		}
	}
	if !sawDirective {
		t.Errorf("malformed directive not reported: %v", diags)
	}
	if !sawUnsuppressed {
		t.Errorf("typoed allow must not suppress the underlying finding: %v", diags)
	}
}
