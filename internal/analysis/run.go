package analysis

import (
	"fmt"
	"sort"
)

// Run loads the packages matched by patterns and applies every analyzer
// whose Scope selects them, returning the surviving (non-suppressed)
// diagnostics sorted by position. Malformed mvlint directives are
// diagnostics in their own right, attributed to DirectiveAnalyzerName
// and never suppressible.
func Run(moduleDir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := LoadPackages(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	known := KnownNames(analyzers)
	var all []Diagnostic
	for _, pkg := range pkgs {
		var scoped []*Analyzer
		for _, a := range analyzers {
			if a.AppliesTo(pkg.Path) {
				scoped = append(scoped, a)
			}
		}
		diags, err := CheckPackage(pkg, scoped, known)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// KnownNames builds the valid-analyzer-name set //mvlint:allow
// directives are validated against.
func KnownNames(analyzers []*Analyzer) map[string]bool {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}

// CheckPackage runs the given analyzers over one loaded package,
// ignoring Scope (the caller has already decided applicability — the
// analysistest harness relies on this to exercise scoped analyzers on
// fixture packages). Directive parse errors are emitted once per
// package; analyzer findings carrying a matching //mvlint:allow on
// their own line or the line above are suppressed.
func CheckPackage(pkg *Package, analyzers []*Analyzer, known map[string]bool) ([]Diagnostic, error) {
	var dirs []Directive
	var out []Diagnostic
	for _, f := range pkg.Files {
		fd, fdiags := ParseDirectives(pkg.Fset, f, known)
		dirs = append(dirs, fd...)
		out = append(out, fdiags...)
	}
	// allow[file][line][analyzer]
	allow := make(map[string]map[int]map[string]bool)
	for _, d := range dirs {
		if d.Verb != VerbAllow {
			continue
		}
		pos := pkg.Fset.Position(d.Pos)
		if allow[pos.Filename] == nil {
			allow[pos.Filename] = make(map[int]map[string]bool)
		}
		if allow[pos.Filename][pos.Line] == nil {
			allow[pos.Filename][pos.Line] = make(map[string]bool)
		}
		allow[pos.Filename][pos.Line][d.Analyzer] = true
	}
	suppressed := func(d Diagnostic) bool {
		lines := allow[d.Pos.Filename]
		return lines[d.Pos.Line][d.Analyzer] || lines[d.Pos.Line-1][d.Analyzer]
	}
	for _, a := range analyzers {
		var sink []Diagnostic
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			directives: dirs,
			sink:       &sink,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Path, err)
		}
		for _, d := range sink {
			if !suppressed(d) {
				out = append(out, d)
			}
		}
	}
	return out, nil
}
