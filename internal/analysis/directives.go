package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Directive verbs.
const (
	VerbAllow   = "allow"
	VerbHotpath = "hotpath"
)

// DirectiveAnalyzerName is the pseudo-analyzer that owns diagnostics
// about the directives themselves (malformed spellings, unknown
// analyzer names). Its diagnostics are never suppressible.
const DirectiveAnalyzerName = "mvlint"

// Directive is one parsed //mvlint:... control comment.
//
//	//mvlint:allow <analyzer> -- <reason>   suppress <analyzer> findings
//	                                        on this line or the next
//	//mvlint:hotpath                        mark the documented function
//	                                        as a hot path
type Directive struct {
	Pos      token.Pos
	Verb     string
	Analyzer string // allow only
	Reason   string // allow only
}

const directivePrefix = "mvlint:"

// ParseDirectives extracts every mvlint directive from file. known maps
// valid analyzer names (for allow validation). Malformed directives are
// returned as hard diagnostics attributed to DirectiveAnalyzerName —
// a directive that cannot be parsed must fail the run, never silently
// stop suppressing.
func ParseDirectives(fset *token.FileSet, file *ast.File, known map[string]bool) ([]Directive, []Diagnostic) {
	var dirs []Directive
	var diags []Diagnostic
	fail := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: DirectiveAnalyzerName,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				// /* ... */ comments cannot carry directives; flag an
				// attempt rather than ignoring it.
				inner := strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/")
				if strings.Contains(strings.TrimSpace(inner), directivePrefix) {
					fail(c.Pos(), "mvlint directives must be //-style line comments")
				}
				continue
			}
			if !strings.HasPrefix(text, directivePrefix) {
				// "// mvlint:allow ..." with a space is a typo that would
				// otherwise silently not suppress anything.
				if strings.HasPrefix(strings.TrimSpace(text), directivePrefix) {
					fail(c.Pos(), "malformed directive %q: no space between // and %s", c.Text, directivePrefix)
				}
				continue
			}
			rest := text[len(directivePrefix):]
			verb, args, _ := strings.Cut(rest, " ")
			switch verb {
			case VerbHotpath:
				if strings.TrimSpace(args) != "" {
					fail(c.Pos(), "mvlint:hotpath takes no arguments (got %q)", strings.TrimSpace(args))
					continue
				}
				dirs = append(dirs, Directive{Pos: c.Pos(), Verb: VerbHotpath})
			case VerbAllow:
				name, reason, found := strings.Cut(args, "--")
				name = strings.TrimSpace(name)
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					fail(c.Pos(), "mvlint:allow needs an analyzer name: //mvlint:allow <analyzer> -- <reason>")
				case strings.ContainsAny(name, " \t"):
					fail(c.Pos(), "mvlint:allow takes exactly one analyzer name (got %q)", name)
				case known != nil && !known[name]:
					fail(c.Pos(), "mvlint:allow names unknown analyzer %q", name)
				case !found || reason == "":
					fail(c.Pos(), "mvlint:allow %s needs a justification: //mvlint:allow %s -- <reason>", name, name)
				default:
					dirs = append(dirs, Directive{Pos: c.Pos(), Verb: VerbAllow, Analyzer: name, Reason: reason})
				}
			default:
				fail(c.Pos(), "unknown mvlint directive %q (want %s or %s)", verb, VerbAllow, VerbHotpath)
			}
		}
	}
	return dirs, diags
}
