package mvlint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmcloud/internal/analysis"
	"vmcloud/internal/analysis/mvlint"
)

// TestSuiteHasEveryContract pins the registry: dropping an analyzer
// from the suite silently stops enforcing its invariant.
func TestSuiteHasEveryContract(t *testing.T) {
	want := map[string]bool{"determinism": true, "noretain": true, "hotpath": true, "moneyfloat": true}
	for _, a := range mvlint.Suite() {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q in suite", a.Name)
		}
		delete(want, a.Name)
	}
	for name := range want {
		t.Errorf("analyzer %q missing from suite", name)
	}
}

// TestRepoIsClean runs the full suite over the module, exactly as
// cmd/mvlint and the CI step do. Any finding here is either a genuine
// invariant violation (fix it) or an intentional exception (annotate it
// with //mvlint:allow <analyzer> -- <reason>).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint shells out to go list; skipped in -short")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	moduleDir, err := analysis.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(moduleDir, []string{"./..."}, mvlint.Suite())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestTelemetryFastPathsAreMarked pins the observability contract from
// the other side: the telemetry instruments that sit on the zero-alloc
// cache-hit path must carry //mvlint:hotpath, so the hotpath analyzer
// (and TestRepoIsClean above) actually guards them. Removing a marker
// would silently exempt the instrument from the discipline; this test
// turns that into a failure.
func TestTelemetryFastPathsAreMarked(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	moduleDir, err := analysis.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	// receiver.method (or bare function) -> relative source file.
	want := map[string]string{
		"Counter.Add":             "internal/obs/counter.go",
		"Counter.Inc":             "internal/obs/counter.go",
		"shardIndex":              "internal/obs/counter.go",
		"Gauge.Set":               "internal/obs/counter.go",
		"Gauge.Add":               "internal/obs/counter.go",
		"Histogram.Observe":       "internal/obs/histogram.go",
		"Trace.StartTimer":        "internal/obs/trace.go",
		"Trace.ObserveSince":      "internal/obs/trace.go",
		"Trace.Observe":           "internal/obs/trace.go",
		"endpointMetrics.observe": "internal/server/metrics.go",
	}
	files := map[string][]string{}
	for fn, file := range want {
		files[file] = append(files[file], fn)
	}
	fset := token.NewFileSet()
	for file, fns := range files {
		f, err := parser.ParseFile(fset, filepath.Join(moduleDir, file), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		marked := map[string]bool{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.TrimSpace(c.Text) == "//mvlint:hotpath" {
					marked[funcKey(fd)] = true
				}
			}
		}
		for _, fn := range fns {
			if !marked[fn] {
				t.Errorf("%s: %s is not marked //mvlint:hotpath", file, fn)
			}
		}
	}
}

// funcKey renders a FuncDecl as receiver.method or a bare name.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	typ := fd.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
