package mvlint_test

import (
	"os"
	"testing"

	"vmcloud/internal/analysis"
	"vmcloud/internal/analysis/mvlint"
)

// TestSuiteHasEveryContract pins the registry: dropping an analyzer
// from the suite silently stops enforcing its invariant.
func TestSuiteHasEveryContract(t *testing.T) {
	want := map[string]bool{"determinism": true, "noretain": true, "hotpath": true, "moneyfloat": true}
	for _, a := range mvlint.Suite() {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q in suite", a.Name)
		}
		delete(want, a.Name)
	}
	for name := range want {
		t.Errorf("analyzer %q missing from suite", name)
	}
}

// TestRepoIsClean runs the full suite over the module, exactly as
// cmd/mvlint and the CI step do. Any finding here is either a genuine
// invariant violation (fix it) or an intentional exception (annotate it
// with //mvlint:allow <analyzer> -- <reason>).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint shells out to go list; skipped in -short")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	moduleDir, err := analysis.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(moduleDir, []string{"./..."}, mvlint.Suite())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
