// Package mvlint assembles the repo's invariant-checking analyzer suite
// — the single registry cmd/mvlint, the CI step and the repo-clean test
// all run.
package mvlint

import (
	"vmcloud/internal/analysis"
	"vmcloud/internal/analysis/passes/determinism"
	"vmcloud/internal/analysis/passes/hotpath"
	"vmcloud/internal/analysis/passes/moneyfloat"
	"vmcloud/internal/analysis/passes/noretain"
)

// Suite returns every analyzer mvlint enforces, in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		noretain.Analyzer,
		hotpath.Analyzer,
		moneyfloat.Analyzer,
	}
}
