// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface this repo needs: typed AST
// passes over go-list-loaded packages, per-line suppression via
// //mvlint:allow directives, and //mvlint:hotpath function markers.
//
// The container this repo builds in bakes only the Go toolchain — no
// module proxy, no x/tools — so the framework is built on the standard
// library alone: package metadata and export data come from
// `go list -deps -export -json`, type checking from go/types with the
// gc export-data importer, and directive/suppression handling is
// implemented here. The analyzer API is deliberately shaped like
// x/tools' so the passes under passes/ would port over verbatim if the
// dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mvlint:allow <name> directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Scope restricts the analyzer to packages whose import path
	// contains one of these substrings. Empty means every package.
	Scope []string
	// Exclude skips packages whose import path contains one of these
	// substrings, after Scope matching.
	Exclude []string
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(*Pass) error
}

// AppliesTo reports whether the analyzer's Scope/Exclude rules select
// the package with the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	for _, ex := range a.Exclude {
		if strings.Contains(pkgPath, ex) {
			return false
		}
	}
	if len(a.Scope) == 0 {
		return true
	}
	for _, sc := range a.Scope {
		if strings.Contains(pkgPath, sc) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer run over one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	directives []Directive
	sink       *[]Diagnostic
}

// Diagnostic is one reported finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.TypesInfo.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// CalleeFunc resolves the called function or method of call, or nil for
// builtins, type conversions and indirect calls through variables.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// HotpathMarked reports whether fn carries a well-formed
// //mvlint:hotpath directive in its doc comment.
func (p *Pass) HotpathMarked(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, d := range p.directives {
		if d.Verb == VerbHotpath && d.Pos >= fn.Doc.Pos() && d.Pos <= fn.Doc.End() {
			return true
		}
	}
	return false
}
