package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzConfigJSONNormalize hammers the wire-config canonicalization the
// server decodes untrusted bodies straight into. The contract under
// fuzzing: arbitrary JSON never panics; whatever Normalize accepts must
// (a) re-normalize to a fixed point — the property the memoization keys
// rely on — and (b) resolve into a buildable Config.
func FuzzConfigJSONNormalize(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"provider":"aws-2012","queries":5}`,
		`{"solver":"search","seed":42}`,
		`{"solver":"bogus"}`,
		`{"seed":-1}`,
		`{"months":0.5,"fact_rows":1000000}`,
		`{"job_overhead":"not-a-duration"}`,
		`{"job_overhead":"-5m"}`,
		`{"maintenance_policy":"psychic"}`,
		`{"update_ratio":97}`,
		`{"frequency":-3}`,
		`{"workload":[{"levels":["year","country"],"frequency":30}]}`,
		`{"workload":[{"levels":["eon","country"]}]}`,
		`{"workload":[{"levels":["year"]}]}`,
		`{"workload":[{"point":[99,99]}]}`,
		`{"provider_spec":{"name":"x"}}`,
		`{"provider_spec":{"name":"tiny","compute":{"granularity":"per-hour","instances":[{"name":"small","price_per_hour":"$0.10","ecu":1}]},"storage":{"mode":"slab","tiers":[{"price_per_gb":"$0.10"}]},"transfer":{"ingress_free":true,"egress":{"mode":"graduated","tiers":[{"price_per_gb":"$0.10"}]}}}}`,
		`{"provider_spec":{"compute":{"instances":[{"price_per_hour":"nonsense"}]}}}`,
		`{"fact_rows":-1}`,
		`{"instances":-5}`,
		`{"candidate_budget":-2}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var cj ConfigJSON
		if err := json.Unmarshal(data, &cj); err != nil {
			return // not JSON at all — the decoder rejects it upstream
		}
		if err := cj.Normalize(); err != nil {
			return // rejected inputs just need to not panic
		}
		first, err := json.Marshal(cj)
		if err != nil {
			t.Fatalf("normalized config does not marshal: %v", err)
		}
		if err := cj.Normalize(); err != nil {
			t.Fatalf("re-normalizing an accepted config failed: %v\ninput: %s", err, data)
		}
		second, err := json.Marshal(cj)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("Normalize is not a fixed point:\nfirst:  %s\nsecond: %s\ninput: %s", first, second, data)
		}
		if _, err := cj.Resolve(); err != nil {
			t.Fatalf("accepted config failed to resolve: %v\ninput: %s", err, data)
		}
	})
}
