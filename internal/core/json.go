package core

import (
	"encoding/json"
	"fmt"
	"time"

	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/schema"
	"vmcloud/internal/units"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// ConfigJSON is the wire form of Config, as accepted by the mvcloudd API.
// Every field is optional; zero values select the paper's experimental
// defaults, exactly as Config does. The schema is always the sales star
// schema — the only one the wire format names levels for.
type ConfigJSON struct {
	// Provider names a built-in tariff (see pricing.Catalog); ignored when
	// ProviderSpec is given.
	Provider string `json:"provider,omitempty"`
	// ProviderSpec is an inline tariff in the pricing JSON wire format.
	ProviderSpec json.RawMessage `json:"provider_spec,omitempty"`
	InstanceType string          `json:"instance_type,omitempty"`
	Instances    int             `json:"instances,omitempty"`
	FactRows     int64           `json:"fact_rows,omitempty"`
	Months       float64         `json:"months,omitempty"`
	// Queries selects the paper's n-query sales workload (1..10); ignored
	// when Workload lists queries explicitly.
	Queries int `json:"queries,omitempty"`
	// Frequency overrides every query's monthly execution count (≥ 1).
	Frequency int                  `json:"frequency,omitempty"`
	Workload  []workload.QueryJSON `json:"workload,omitempty"`
	// CandidateBudget caps the pre-selected candidate views.
	CandidateBudget int     `json:"candidate_budget,omitempty"`
	MaintenanceRuns int     `json:"maintenance_runs,omitempty"`
	UpdateRatio     float64 `json:"update_ratio,omitempty"`
	// MaintenancePolicy is "immediate" (default) or "deferred".
	MaintenancePolicy string `json:"maintenance_policy,omitempty"`
	// JobOverhead is a Go duration string, e.g. "2m".
	JobOverhead string `json:"job_overhead,omitempty"`
	// Solver is "knapsack" (default), "search" or "auto".
	Solver string `json:"solver,omitempty"`
	// Seed drives the search solver's randomized restarts; identical
	// seeds yield byte-identical responses. Canonicalized to 0 when the
	// solver is "knapsack" (which ignores it), so seed spellings cannot
	// fragment the response cache.
	Seed int64 `json:"seed,omitempty"`
}

// Normalize fills every defaulted field with its concrete value and
// rewrites the workload in fully resolved form (levels + point + name +
// frequency), so that two requests describing the same advisory problem
// normalize to identical structs. It reports the first validation error.
func (cj *ConfigJSON) Normalize() error {
	if len(cj.ProviderSpec) > 0 {
		p, err := pricing.UnmarshalProvider(cj.ProviderSpec)
		if err != nil {
			return err
		}
		// Re-marshal so formatting differences don't fragment the form.
		canon, err := pricing.MarshalProvider(p)
		if err != nil {
			return err
		}
		cj.ProviderSpec = canon
		cj.Provider = ""
	} else {
		if cj.Provider == "" {
			cj.Provider = pricing.AWS2012().Name
		}
		if _, err := pricing.Lookup(cj.Provider); err != nil {
			return err
		}
	}
	if cj.InstanceType == "" {
		cj.InstanceType = "small"
	}
	if cj.Instances == 0 {
		cj.Instances = 5
	}
	if cj.Instances < 0 {
		return fmt.Errorf("core: negative fleet size %d", cj.Instances)
	}
	if cj.FactRows == 0 {
		cj.FactRows = 200_000_000
	}
	if cj.FactRows < 0 {
		return fmt.Errorf("core: negative fact_rows %d", cj.FactRows)
	}
	if cj.Months == 0 {
		cj.Months = 1
	}
	if cj.Months < 0 {
		return fmt.Errorf("core: negative months %g", cj.Months)
	}
	if cj.CandidateBudget == 0 {
		cj.CandidateBudget = 8
	}
	if cj.MaintenanceRuns == 0 {
		cj.MaintenanceRuns = 4
	}
	if cj.MaintenanceRuns < 0 {
		return fmt.Errorf("core: negative maintenance_runs %d", cj.MaintenanceRuns)
	}
	if cj.UpdateRatio == 0 {
		cj.UpdateRatio = 0.20
	}
	if cj.UpdateRatio < 0 || cj.UpdateRatio > 1 {
		return fmt.Errorf("core: update_ratio %g out of [0,1]", cj.UpdateRatio)
	}
	if cj.CandidateBudget < 0 {
		return fmt.Errorf("core: negative candidate_budget %d", cj.CandidateBudget)
	}
	switch cj.MaintenancePolicy {
	case "":
		cj.MaintenancePolicy = "immediate"
	case "immediate", "deferred":
	default:
		return fmt.Errorf("core: unknown maintenance policy %q (want immediate or deferred)", cj.MaintenancePolicy)
	}
	solver, err := CanonSolver(cj.Solver)
	if err != nil {
		return err
	}
	cj.Solver = solver
	if cj.Solver == SolverAuto {
		// The wire format is sales-schema-only, whose candidate pool
		// (≤ 15, and server-capped at 16) can never exceed
		// AutoSearchThreshold — so on the wire "auto" always resolves to
		// the knapsack. Canonicalize it eagerly: the seed-zeroing below
		// then needs no distant invariant, and any future wire field
		// that grows the schema must revisit this line explicitly.
		cj.Solver = SolverKnapsack
	}
	if cj.Solver != SolverSearch {
		// The DP solver is seed-independent; canonicalize the seed away
		// so spellings cannot fragment the memoization key space.
		cj.Seed = 0
	}
	if cj.JobOverhead == "" {
		cj.JobOverhead = "2m"
	}
	d, err := time.ParseDuration(cj.JobOverhead)
	if err != nil {
		return fmt.Errorf("core: job_overhead: %w", err)
	}
	if d < 0 {
		return fmt.Errorf("core: negative job_overhead %v", d)
	}
	cj.JobOverhead = d.String()

	// Resolve the workload to its explicit form against the lattice this
	// config will build.
	l, err := lattice.New(schema.Sales(), cj.FactRows)
	if err != nil {
		return err
	}
	var w workload.Workload
	if len(cj.Workload) > 0 {
		w, err = workload.FromJSON(l, cj.Workload)
		if err != nil {
			return err
		}
		cj.Queries = 0
	} else {
		if cj.Queries == 0 {
			cj.Queries = 10
		}
		w, err = workload.Sales(l, cj.Queries)
		if err != nil {
			return err
		}
		// The workload below is now explicit; zero the shorthand so both
		// spellings of the same problem share one canonical form (and
		// re-normalizing is a fixed point).
		cj.Queries = 0
	}
	if cj.Frequency < 0 {
		return fmt.Errorf("core: negative frequency %d", cj.Frequency)
	}
	if cj.Frequency > 0 {
		for i := range w.Queries {
			w.Queries[i].Frequency = cj.Frequency
		}
		cj.Frequency = 0
	}
	cj.Workload = w.JSON(l)
	return nil
}

// Config resolves the wire form into a Config ready for New. It calls
// Normalize first, so defaults and validation match the wire semantics.
func (cj ConfigJSON) Config() (Config, error) {
	if err := cj.Normalize(); err != nil {
		return Config{}, err
	}
	return cj.Resolve()
}

// Resolve resolves an already-normalized wire config into a Config
// without re-running Normalize — the hot path for servers that
// canonicalized the request earlier. Callers holding arbitrary input
// should use Config instead.
func (cj ConfigJSON) Resolve() (Config, error) {
	cfg := Config{
		InstanceType:    cj.InstanceType,
		Instances:       cj.Instances,
		FactRows:        cj.FactRows,
		Months:          cj.Months,
		CandidateBudget: cj.CandidateBudget,
		MaintenanceRuns: cj.MaintenanceRuns,
		UpdateRatio:     cj.UpdateRatio,
		Solver:          cj.Solver,
		Seed:            cj.Seed,
	}
	if len(cj.ProviderSpec) > 0 {
		p, err := pricing.UnmarshalProvider(cj.ProviderSpec)
		if err != nil {
			return Config{}, err
		}
		cfg.Provider = &p
	} else {
		p, err := pricing.Lookup(cj.Provider)
		if err != nil {
			return Config{}, err
		}
		cfg.Provider = &p
	}
	if cj.MaintenancePolicy == "deferred" {
		cfg.MaintenancePolicy = views.DeferredMaintenance
	}
	d, err := time.ParseDuration(cj.JobOverhead)
	if err != nil {
		return Config{}, fmt.Errorf("core: job_overhead: %w", err)
	}
	cfg.JobOverhead = d
	l, err := lattice.New(schema.Sales(), cj.FactRows)
	if err != nil {
		return Config{}, err
	}
	cfg.Workload, err = workload.FromJSON(l, cj.Workload)
	if err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// BillJSON is the wire form of a priced bill (Formula 1 decomposed).
type BillJSON struct {
	Total           money.Money `json:"total"`
	Compute         money.Money `json:"compute"`
	Processing      money.Money `json:"processing"`
	Maintenance     money.Money `json:"maintenance"`
	Materialization money.Money `json:"materialization"`
	Storage         money.Money `json:"storage"`
	Transfer        money.Money `json:"transfer"`
}

// NewBillJSON flattens a Bill for the wire.
func NewBillJSON(b costmodel.Bill) BillJSON {
	return BillJSON{
		Total:           b.Total(),
		Compute:         b.Compute.Total(),
		Processing:      b.Compute.Processing,
		Maintenance:     b.Compute.Maintenance,
		Materialization: b.Compute.Materialization,
		Storage:         b.Storage,
		Transfer:        b.Transfer,
	}
}

// RecommendationJSON is the wire form of a Recommendation.
type RecommendationJSON struct {
	Scenario string `json:"scenario"`
	Feasible bool   `json:"feasible"`
	Strategy string `json:"strategy"`
	// Degraded marks a recommendation whose search stopped at the solve
	// deadline with its best incumbent (never worse than the knapsack
	// warm start). Omitted when false, so pre-deadline wire forms are
	// byte-identical.
	Degraded bool `json:"degraded,omitempty"`
	// Views names the selected cuboids ("year×country"); Points carries
	// the raw lattice coordinates for programmatic callers.
	Views  []string        `json:"views"`
	Points [][]int         `json:"points"`
	Time   string          `json:"time"`
	Hours  float64         `json:"time_hours"`
	Bill   BillJSON        `json:"bill"`
	Base   BaselineJSON    `json:"baseline"`
	Gains  ImprovementJSON `json:"improvement"`
	// Report is the human-readable rendering (Recommendation.Render).
	Report string `json:"report"`
}

// BaselineJSON is the no-view reference configuration.
type BaselineJSON struct {
	Time  string   `json:"time"`
	Hours float64  `json:"time_hours"`
	Bill  BillJSON `json:"bill"`
}

// ImprovementJSON carries the relative gains over the baseline.
type ImprovementJSON struct {
	Time float64 `json:"time"`
	Cost float64 `json:"cost"`
}

// JSON renders the recommendation in wire form.
func (r Recommendation) JSON() RecommendationJSON {
	views := r.ViewNames
	if views == nil {
		views = []string{}
	}
	points := make([][]int, len(r.Selection.Points))
	for i, p := range r.Selection.Points {
		points[i] = []int(p.Clone())
	}
	return RecommendationJSON{
		Scenario: r.Scenario,
		Feasible: r.Selection.Feasible,
		Strategy: r.Selection.Strategy,
		Degraded: r.Selection.Degraded,
		Views:    views,
		Points:   points,
		Time:     r.Selection.Time.String(),
		Hours:    r.Selection.Time.Hours(),
		Bill:     NewBillJSON(r.Selection.Bill),
		Base: BaselineJSON{
			Time:  r.BaselineTime.String(),
			Hours: r.BaselineTime.Hours(),
			Bill:  NewBillJSON(r.BaselineBill),
		},
		Gains: ImprovementJSON{
			Time: r.TimeImprovement(),
			Cost: r.CostImprovement(),
		},
		Report: r.Render(),
	}
}

// ParetoPointJSON is the wire form of one frontier point.
type ParetoPointJSON struct {
	Alpha    float64     `json:"alpha"`
	Time     string      `json:"time"`
	Hours    float64     `json:"time_hours"`
	Cost     money.Money `json:"cost"`
	Views    int         `json:"views"`
	Degraded bool        `json:"degraded,omitempty"`
}

// ParetoJSON renders a frontier in wire form.
func ParetoJSON(front []ParetoPoint) []ParetoPointJSON {
	out := make([]ParetoPointJSON, len(front))
	for i, p := range front {
		out[i] = ParetoPointJSON{
			Alpha:    p.Alpha,
			Time:     p.Time.String(),
			Hours:    p.Time.Hours(),
			Cost:     p.Cost,
			Views:    p.Views,
			Degraded: p.Degraded,
		}
	}
	return out
}

// DatasetSizeOf reports the base cuboid volume a config implies — handy
// context for API responses.
func DatasetSizeOf(a *Advisor) units.DataSize {
	n, err := a.Lat.Node(a.Lat.Base())
	if err != nil {
		return 0
	}
	return n.Size
}
