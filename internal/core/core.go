// Package core wires the full view-materialization advisor — the paper's
// end-to-end workflow: describe a dataset, a workload and a cloud tariff;
// generate candidate views; and solve one of the three optimization
// scenarios (budget limit, response-time limit, time/cost tradeoff) into a
// concrete recommendation with an itemized bill.
package core

import (
	"fmt"
	"strings"
	"time"

	"vmcloud/internal/cluster"
	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/optimizer"
	"vmcloud/internal/pricing"
	"vmcloud/internal/report"
	"vmcloud/internal/schema"
	"vmcloud/internal/search"
	"vmcloud/internal/units"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// Config describes an advisory problem. Zero values select the paper's
// experimental defaults.
type Config struct {
	// Provider is the cloud tariff; defaults to AWS2012.
	Provider *pricing.Provider
	// InstanceType names the rented configuration; defaults to "small".
	InstanceType string
	// Instances is the fleet size nbIC; defaults to 5.
	Instances int
	// Schema defaults to the sales star schema.
	Schema *schema.Schema
	// FactRows sizes the dataset; defaults to 200M rows (≈10 GB).
	FactRows int64
	// Months is the billing period; defaults to 1.
	Months float64
	// Workload is required: the queries to optimize for.
	Workload workload.Workload
	// CandidateBudget caps the pre-selected candidate views; default 8.
	CandidateBudget int
	// MaintenanceRuns and UpdateRatio tune the maintenance model;
	// defaults 4 runs/month over 20% churn.
	MaintenanceRuns int
	UpdateRatio     float64
	// MaintenancePolicy selects immediate (default) or deferred refresh.
	MaintenancePolicy views.MaintenancePolicy
	// JobOverhead is the per-job startup floor; default 2 minutes.
	JobOverhead time.Duration
	// Granularity overrides the provider's billing rounding if non-nil.
	Granularity *units.BillingGranularity
	// Solver selects the optimization engine: SolverKnapsack (default)
	// runs the paper's linearized 0/1 knapsack DPs, SolverSearch runs the
	// exact-evaluator metaheuristics of internal/search, and SolverAuto
	// picks search once the candidate pool exceeds AutoSearchThreshold
	// (where the linearization error starts to bite).
	Solver string
	// Seed drives the search solver's randomized restarts and annealing;
	// identical seeds yield identical recommendations. Ignored by the
	// knapsack solver.
	Seed int64
}

// Solver names accepted by Config.Solver and the "solver" wire field.
const (
	SolverKnapsack = "knapsack"
	SolverSearch   = "search"
	SolverAuto     = "auto"
)

// AutoSearchThreshold is the candidate-pool size above which SolverAuto
// switches from the linearized knapsack to metaheuristic search. The
// paper's 16-cuboid sales lattice can never exceed it (at most 15
// non-base cuboids qualify as candidates), so "auto" preserves the
// paper's solver on the paper's setting and flips to search exactly when
// the lattice outgrows it.
const AutoSearchThreshold = 16

// CanonSolver canonicalizes a solver name: trimmed, lower-cased, ""
// mapped to SolverKnapsack, and anything unknown rejected.
func CanonSolver(s string) (string, error) {
	switch c := strings.ToLower(strings.TrimSpace(s)); c {
	case "":
		return SolverKnapsack, nil
	case SolverKnapsack, SolverSearch, SolverAuto:
		return c, nil
	default:
		return "", fmt.Errorf("core: unknown solver %q (want %s, %s or %s)", s, SolverKnapsack, SolverSearch, SolverAuto)
	}
}

// Advisor is a wired advisory session.
type Advisor struct {
	Lat        *lattice.Lattice
	Cl         *cluster.Cluster
	Est        *views.Estimator
	W          workload.Workload
	Ev         *optimizer.Evaluator
	Candidates []views.Candidate
	// Solver is the canonicalized engine choice (never "auto": New
	// resolves auto against the candidate count) and Seed the search
	// seed it runs with.
	Solver string
	Seed   int64
}

// New builds an advisor from a config.
func New(cfg Config) (*Advisor, error) {
	// Validate the cheap, purely-syntactic fields before any expensive
	// construction (lattice, candidate generation).
	solver, err := CanonSolver(cfg.Solver)
	if err != nil {
		return nil, err
	}
	prov := pricing.AWS2012()
	if cfg.Provider != nil {
		prov = *cfg.Provider
	}
	if cfg.Granularity != nil {
		prov.Compute.Granularity = *cfg.Granularity
	}
	if cfg.InstanceType == "" {
		cfg.InstanceType = "small"
	}
	if cfg.Instances == 0 {
		cfg.Instances = 5
	}
	if cfg.Schema == nil {
		cfg.Schema = schema.Sales()
	}
	if cfg.FactRows == 0 {
		cfg.FactRows = 200_000_000
	}
	if cfg.Months == 0 {
		cfg.Months = 1
	}
	if cfg.CandidateBudget == 0 {
		cfg.CandidateBudget = 8
	}
	if cfg.MaintenanceRuns == 0 {
		cfg.MaintenanceRuns = 4
	}
	if cfg.UpdateRatio == 0 {
		cfg.UpdateRatio = 0.20
	}
	if cfg.JobOverhead == 0 {
		cfg.JobOverhead = 2 * time.Minute
	}

	l, err := lattice.New(cfg.Schema, cfg.FactRows)
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(prov, cfg.InstanceType, cfg.Instances)
	if err != nil {
		return nil, err
	}
	cl.JobOverhead = cfg.JobOverhead
	est := views.NewEstimator(l, cl)
	est.MaintenanceRuns = cfg.MaintenanceRuns
	est.UpdateRatio = cfg.UpdateRatio
	est.Policy = cfg.MaintenancePolicy

	if err := cfg.Workload.Validate(l); err != nil {
		return nil, err
	}
	egress, err := cfg.Workload.ResultBytes(l)
	if err != nil {
		return nil, err
	}
	baseNode, err := l.Node(l.Base())
	if err != nil {
		return nil, err
	}
	base := costmodel.Plan{
		Cluster:       cl,
		Months:        cfg.Months,
		DatasetSize:   baseNode.Size,
		MonthlyEgress: egress,
	}
	ev, err := optimizer.NewEvaluator(est, cfg.Workload, base)
	if err != nil {
		return nil, err
	}
	cands, err := views.GenerateCandidates(l, cfg.Workload, cfg.CandidateBudget)
	if err != nil {
		return nil, err
	}
	if solver == SolverAuto {
		solver = SolverKnapsack
		if len(cands) > AutoSearchThreshold {
			solver = SolverSearch
		}
	}
	return &Advisor{
		Lat:        l,
		Cl:         cl,
		Est:        est,
		W:          cfg.Workload,
		Ev:         ev,
		Candidates: cands,
		Solver:     solver,
		Seed:       cfg.Seed,
	}, nil
}

// Recommendation is a solved scenario with context for reporting.
type Recommendation struct {
	Scenario     string
	Selection    optimizer.Selection
	BaselineTime time.Duration
	BaselineBill costmodel.Bill
	ViewNames    []string
}

// TimeImprovement is (Tbase − Twith)/Tbase.
func (r Recommendation) TimeImprovement() float64 {
	if r.BaselineTime <= 0 {
		return 0
	}
	return float64(r.BaselineTime-r.Selection.Time) / float64(r.BaselineTime)
}

// CostImprovement is (Cbase − Cwith)/Cbase; negative means views cost more.
func (r Recommendation) CostImprovement() float64 {
	base := r.BaselineBill.Total().Dollars()
	if base <= 0 {
		return 0
	}
	return (base - r.Selection.Bill.Total().Dollars()) / base
}

// Render produces a human-readable report.
func (r Recommendation) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Scenario %s — %s\n", r.Scenario, feasibility(r.Selection.Feasible))
	t := report.NewTable("",
		"", "workload time", "total cost", "compute", "storage", "transfer")
	t.AddRow("without views", fmt.Sprintf("%.3fh", r.BaselineTime.Hours()),
		r.BaselineBill.Total(), r.BaselineBill.Compute.Total(), r.BaselineBill.Storage, r.BaselineBill.Transfer)
	t.AddRow("with views", fmt.Sprintf("%.3fh", r.Selection.Time.Hours()),
		r.Selection.Bill.Total(), r.Selection.Bill.Compute.Total(), r.Selection.Bill.Storage, r.Selection.Bill.Transfer)
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "time improvement: %s   cost improvement: %s\n",
		report.Percent(r.TimeImprovement()), report.Percent(r.CostImprovement()))
	if len(r.ViewNames) == 0 {
		sb.WriteString("materialize: nothing\n")
	} else {
		fmt.Fprintf(&sb, "materialize: %s\n", strings.Join(r.ViewNames, ", "))
	}
	return sb.String()
}

func feasibility(ok bool) string {
	if ok {
		return "constraint satisfied"
	}
	return "CONSTRAINT NOT SATISFIABLE (best effort shown)"
}

func (a *Advisor) recommend(scenario string, sel optimizer.Selection) (Recommendation, error) {
	baseT, baseBill, err := a.Ev.Evaluate(nil)
	if err != nil {
		return Recommendation{}, err
	}
	names := make([]string, len(sel.Points))
	for i, p := range sel.Points {
		names[i] = a.Lat.Name(p)
	}
	return Recommendation{
		Scenario:     scenario,
		Selection:    sel,
		BaselineTime: baseT,
		BaselineBill: baseBill,
		ViewNames:    names,
	}, nil
}

// PlanFor reconstructs the priced plan behind a selection, enabling
// itemized invoice rendering (costmodel.Itemize).
func (a *Advisor) PlanFor(sel optimizer.Selection) costmodel.Plan {
	return a.Ev.Base.WithViews(
		a.Est.ViewsSize(sel.Points),
		a.Est.WorkloadTime(a.W, sel.Points),
		a.Est.MaintenanceTimeForWorkload(sel.Points, a.W),
		a.Est.TotalMaterializationTime(sel.Points),
	)
}

// useSearch reports whether the advisor dispatches to the metaheuristic
// engine, and searchOpts its deterministic configuration.
func (a *Advisor) useSearch() bool { return a.Solver == SolverSearch }

func (a *Advisor) searchOpts() search.Options { return search.Options{Seed: a.Seed} }

// advise runs one scenario through the configured engine and wraps the
// selection into a recommendation — the single dispatch point between
// the knapsack DPs and the metaheuristic search. The search path first
// solves the (cheap) linearized knapsack and warm-starts from its
// selection, so a search recommendation is never worse than the
// knapsack's under the exact re-priced objective — the guarantee the
// large-lattice experiments assert, held on the product path.
func (a *Advisor) advise(scenario string, knapsack func() (optimizer.Selection, error), searcher func(warm optimizer.Selection) (optimizer.Selection, error)) (Recommendation, error) {
	sel, err := knapsack()
	if err == nil && a.useSearch() {
		sel, err = searcher(sel)
	}
	if err != nil {
		return Recommendation{}, err
	}
	return a.recommend(scenario, sel)
}

// warmOpts is searchOpts seeded with a warm-start selection.
func (a *Advisor) warmOpts(warm optimizer.Selection) search.Options {
	opts := a.searchOpts()
	opts.Starts = [][]lattice.Point{warm.Points}
	return opts
}

// AdviseBudget solves scenario MV1: fastest workload within the budget.
func (a *Advisor) AdviseBudget(budget money.Money) (Recommendation, error) {
	return a.advise("MV1 (budget limit)",
		func() (optimizer.Selection, error) { return a.Ev.SolveMV1(a.Candidates, budget) },
		func(warm optimizer.Selection) (optimizer.Selection, error) {
			return search.SolveMV1(a.Ev, a.Candidates, budget, a.warmOpts(warm))
		},
	)
}

// AdviseDeadline solves scenario MV2: cheapest bill within the time limit.
func (a *Advisor) AdviseDeadline(limit time.Duration) (Recommendation, error) {
	return a.advise("MV2 (response-time limit)",
		func() (optimizer.Selection, error) { return a.Ev.SolveMV2(a.Candidates, limit) },
		func(warm optimizer.Selection) (optimizer.Selection, error) {
			return search.SolveMV2(a.Ev, a.Candidates, limit, a.warmOpts(warm))
		},
	)
}

// AdviseTradeoff solves scenario MV3 with the given α weight on time.
func (a *Advisor) AdviseTradeoff(alpha float64) (Recommendation, error) {
	return a.advise(fmt.Sprintf("MV3 (tradeoff, α=%.2g)", alpha),
		func() (optimizer.Selection, error) { return a.Ev.SolveMV3(a.Candidates, alpha, optimizer.RawTradeoff) },
		func(warm optimizer.Selection) (optimizer.Selection, error) {
			return search.SolveMV3(a.Ev, a.Candidates, alpha, optimizer.RawTradeoff, a.warmOpts(warm))
		},
	)
}

// ParetoPoint is one (time, cost) outcome on the tradeoff frontier.
type ParetoPoint struct {
	Alpha float64
	Time  time.Duration
	Cost  money.Money
	Views int
}

// ParetoFront sweeps α over [0,1] in the given number of steps and returns
// the non-dominated (time, cost) outcomes — the frontier Figures 2–4 of
// the paper sketch.
func (a *Advisor) ParetoFront(steps int) ([]ParetoPoint, error) {
	if steps < 2 {
		return nil, fmt.Errorf("core: need at least 2 sweep steps, got %d", steps)
	}
	// The knapsack per-α sweep runs in both modes: in knapsack mode its
	// selections are the frontier candidates; in search mode they become
	// warm starts, carrying the advise dispatch's guarantee over to the
	// sweep — the search frontier is never worse than the knapsack's at
	// any α (warm starts are priced first; cached re-scores are free).
	knapSels := make([]optimizer.Selection, steps)
	for i := 0; i < steps; i++ {
		alpha := float64(i) / float64(steps-1)
		sel, err := a.Ev.SolveMV3(a.Candidates, alpha, optimizer.NormalizedTradeoff)
		if err != nil {
			return nil, err
		}
		knapSels[i] = sel
	}
	var all []ParetoPoint
	if a.useSearch() {
		// ParetoSweep's evaluation budget spans the whole sweep; scale it
		// by the step count so every α gets a real search, not just the
		// first few before the shared budget runs dry. Warm starts are
		// deduplicated (adjacent α often agree) under a collision-free
		// level-index key.
		opts := a.searchOpts()
		opts.MaxEvals = steps * search.DefaultMaxEvals
		seen := make(map[string]bool)
		for _, ksel := range knapSels {
			key := fmt.Sprintf("%v", ksel.Points)
			if !seen[key] {
				seen[key] = true
				opts.Starts = append(opts.Starts, ksel.Points)
			}
		}
		sweep, err := search.ParetoSweep(a.Ev, a.Candidates, steps, optimizer.NormalizedTradeoff, opts)
		if err != nil {
			return nil, err
		}
		for _, as := range sweep {
			all = append(all, ParetoPoint{
				Alpha: as.Alpha,
				Time:  as.Sel.Time,
				Cost:  as.Sel.Bill.Total(),
				Views: len(as.Sel.Points),
			})
		}
	} else {
		for i, sel := range knapSels {
			all = append(all, ParetoPoint{
				Alpha: float64(i) / float64(steps-1),
				Time:  sel.Time,
				Cost:  sel.Bill.Total(),
				Views: len(sel.Points),
			})
		}
	}
	return paretoFilter(all), nil
}

// paretoFilter keeps the non-dominated points of a sweep.
func paretoFilter(all []ParetoPoint) []ParetoPoint {
	var front []ParetoPoint
	for i, p := range all {
		dominated := false
		for j, q := range all {
			if i == j {
				continue
			}
			if q.Time <= p.Time && q.Cost <= p.Cost && (q.Time < p.Time || q.Cost < p.Cost) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	return front
}
