// Package core wires the full view-materialization advisor — the paper's
// end-to-end workflow: describe a dataset, a workload and a cloud tariff;
// generate candidate views; and solve one of the three optimization
// scenarios (budget limit, response-time limit, time/cost tradeoff) into a
// concrete recommendation with an itemized bill.
package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"vmcloud/internal/cluster"
	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/obs"
	"vmcloud/internal/optimizer"
	"vmcloud/internal/pricing"
	"vmcloud/internal/report"
	"vmcloud/internal/schema"
	"vmcloud/internal/search"
	"vmcloud/internal/units"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// Config describes an advisory problem. Zero values select the paper's
// experimental defaults.
type Config struct {
	// Provider is the cloud tariff; defaults to AWS2012.
	Provider *pricing.Provider
	// InstanceType names the rented configuration; defaults to "small".
	InstanceType string
	// Instances is the fleet size nbIC; defaults to 5.
	Instances int
	// Schema defaults to the sales star schema.
	Schema *schema.Schema
	// FactRows sizes the dataset; defaults to 200M rows (≈10 GB).
	FactRows int64
	// Months is the billing period; defaults to 1.
	Months float64
	// Workload is required: the queries to optimize for.
	Workload workload.Workload
	// CandidateBudget caps the pre-selected candidate views; default 8.
	CandidateBudget int
	// MaintenanceRuns and UpdateRatio tune the maintenance model;
	// defaults 4 runs/month over 20% churn.
	MaintenanceRuns int
	UpdateRatio     float64
	// MaintenancePolicy selects immediate (default) or deferred refresh.
	MaintenancePolicy views.MaintenancePolicy
	// JobOverhead is the per-job startup floor; default 2 minutes.
	JobOverhead time.Duration
	// Granularity overrides the provider's billing rounding if non-nil.
	Granularity *units.BillingGranularity
	// Solver selects the optimization engine: SolverKnapsack (default)
	// runs the paper's linearized 0/1 knapsack DPs, SolverSearch runs the
	// exact-evaluator metaheuristics of internal/search, and SolverAuto
	// picks search once the candidate pool exceeds AutoSearchThreshold
	// (where the linearization error starts to bite).
	Solver string
	// Seed drives the search solver's randomized restarts and annealing;
	// identical seeds yield identical recommendations. Ignored by the
	// knapsack solver.
	Seed int64
	// Trace, when non-nil, records per-phase durations of the build and
	// solve pipeline (lattice → candidates → kernel → bind → solve). A
	// nil trace records nothing and costs nothing.
	Trace *obs.Trace
	// Ctx, when non-nil, bounds every search-solver solve by wall clock:
	// at the deadline the search stops at its best incumbent and marks
	// the recommendation Degraded (see search.Options.Ctx). The knapsack
	// solver is not interruptible — its DP is microseconds on any real
	// candidate pool — so knapsack results are never degraded. Nil means
	// no deadline.
	Ctx context.Context
}

// Solver names accepted by Config.Solver and the "solver" wire field.
const (
	SolverKnapsack = "knapsack"
	SolverSearch   = "search"
	SolverAuto     = "auto"
)

// AutoSearchThreshold is the candidate-pool size above which SolverAuto
// switches from the linearized knapsack to metaheuristic search. The
// paper's 16-cuboid sales lattice can never exceed it (at most 15
// non-base cuboids qualify as candidates), so "auto" preserves the
// paper's solver on the paper's setting and flips to search exactly when
// the lattice outgrows it.
const AutoSearchThreshold = 16

// CanonSolver canonicalizes a solver name: trimmed, lower-cased, ""
// mapped to SolverKnapsack, and anything unknown rejected.
func CanonSolver(s string) (string, error) {
	switch c := strings.ToLower(strings.TrimSpace(s)); c {
	case "":
		return SolverKnapsack, nil
	case SolverKnapsack, SolverSearch, SolverAuto:
		return c, nil
	default:
		return "", fmt.Errorf("core: unknown solver %q (want %s, %s or %s)", s, SolverKnapsack, SolverSearch, SolverAuto)
	}
}

// Advisor is a wired advisory session. It is safe for concurrent use:
// the scenario solvers share one mutable kernel session (scratch
// buffers, lazily cached items and baseline, the search engine's
// selection state), so concurrent Advise*/ParetoFront calls are
// serialized on an internal mutex — callers needing parallel solves of
// one problem under different tariffs should build one advisor per
// tariff (core.Shared.Advisor), which is what the comparison engine
// does.
type Advisor struct {
	Lat        *lattice.Lattice
	Cl         *cluster.Cluster
	Est        *views.Estimator
	W          workload.Workload
	Ev         *optimizer.Evaluator
	Candidates []views.Candidate
	// Solver is the canonicalized engine choice (never "auto": New
	// resolves auto against the candidate count) and Seed the search
	// seed it runs with.
	Solver string
	Seed   int64
	// trace is the optional per-phase span recorder inherited from the
	// Shared; nil-safe.
	trace *obs.Trace
	// mu serializes solves: the session below owns scratch state.
	mu sync.Mutex
	// sess is the kernel binding the scenario solvers run on: the shared
	// pricing-invariant structure re-priced for this advisor's tariff.
	sess *optimizer.KernelSession
	// names is the Shared candidate-name cache (see Shared.names).
	names map[int]string
	// ctx optionally bounds search solves (see Config.Ctx); nil-safe.
	ctx context.Context
}

// viewName renders a selected cuboid's name, via the shared cache when
// the point is a known candidate.
func (a *Advisor) viewName(p lattice.Point) string {
	if id, err := a.Lat.ID(p); err == nil {
		if s, ok := a.names[id]; ok {
			return s
		}
	}
	return a.Lat.Name(p)
}

// Shared is the pricing-invariant half of an advisory problem: the
// lattice, validated workload, candidate pool and comparison kernel —
// everything a Config implies that no tariff can change. Build it once,
// then stamp out per-tariff advisors with Advisor(): each call rebuilds
// only the cluster, the plan template and the kernel's re-priced time
// scalars, never the lattice or the candidate generation. This is what
// lets cross-provider studies (internal/compare, the /v1/sweep grids)
// fan one problem out over many tariffs at re-bill cost per cell.
//
// A Shared is immutable after construction and safe for concurrent use.
type Shared struct {
	Lat        *lattice.Lattice
	W          workload.Workload
	Candidates []views.Candidate
	Kern       *optimizer.ComparisonKernel
	// Solver is canonicalized with "auto" resolved against the candidate
	// count; Seed is the search seed.
	Solver string
	Seed   int64

	months      float64
	datasetSize units.DataSize
	egress      units.DataSize
	maintRuns   int
	updateRatio float64
	policy      views.MaintenancePolicy
	jobOverhead time.Duration
	// names caches the rendered cuboid name of every candidate by
	// lattice id — selections only ever contain candidate points, and
	// every tariff cell of a fan-out would otherwise re-join the same
	// level strings per recommendation.
	names map[int]string
	// trace is the optional per-phase span recorder; nil-safe, shared by
	// every advisor stamped from this structure (its phase slots are
	// atomic, so compare's parallel per-cell binds accumulate safely).
	trace *obs.Trace
	// ctx optionally bounds search solves of every stamped advisor (see
	// Config.Ctx); compare's per-cell fan-out also checks it between
	// cells.
	ctx context.Context
}

// NewShared builds the tariff-independent structure of a config. The
// per-tariff fields (Provider, InstanceType, Instances, Granularity) are
// ignored here; they parameterize Advisor.
func NewShared(cfg Config) (*Shared, error) {
	// Validate the cheap, purely-syntactic fields before any expensive
	// construction (lattice, candidate generation).
	solver, err := CanonSolver(cfg.Solver)
	if err != nil {
		return nil, err
	}
	if cfg.Schema == nil {
		cfg.Schema = schema.Sales()
	}
	if cfg.FactRows == 0 {
		cfg.FactRows = 200_000_000
	}
	if cfg.Months == 0 {
		cfg.Months = 1
	}
	if cfg.CandidateBudget == 0 {
		cfg.CandidateBudget = 8
	}
	if cfg.MaintenanceRuns == 0 {
		cfg.MaintenanceRuns = 4
	}
	if cfg.UpdateRatio == 0 {
		cfg.UpdateRatio = 0.20
	}
	if cfg.JobOverhead == 0 {
		cfg.JobOverhead = 2 * time.Minute
	}

	tr := cfg.Trace
	t0 := tr.StartTimer()
	l, err := lattice.New(cfg.Schema, cfg.FactRows)
	if err != nil {
		return nil, err
	}
	if err := cfg.Workload.Validate(l); err != nil {
		return nil, err
	}
	egress, err := cfg.Workload.ResultBytes(l)
	if err != nil {
		return nil, err
	}
	baseNode, err := l.Node(l.Base())
	if err != nil {
		return nil, err
	}
	tr.ObserveSince(obs.PhaseLattice, t0)
	t0 = tr.StartTimer()
	cands, err := views.GenerateCandidates(l, cfg.Workload, cfg.CandidateBudget)
	if err != nil {
		return nil, err
	}
	tr.ObserveSince(obs.PhaseCandidates, t0)
	t0 = tr.StartTimer()
	kern, err := optimizer.NewComparisonKernel(l, cfg.Workload, cands)
	if err != nil {
		return nil, err
	}
	tr.ObserveSince(obs.PhaseKernel, t0)
	if solver == SolverAuto {
		solver = SolverKnapsack
		if len(cands) > AutoSearchThreshold {
			solver = SolverSearch
		}
	}
	names := make(map[int]string, len(cands))
	for _, c := range cands {
		if id, err := l.ID(c.Point); err == nil {
			names[id] = l.Name(c.Point)
		}
	}
	return &Shared{
		Lat:         l,
		W:           cfg.Workload,
		Candidates:  cands,
		Kern:        kern,
		Solver:      solver,
		Seed:        cfg.Seed,
		months:      cfg.Months,
		datasetSize: baseNode.Size,
		egress:      egress,
		maintRuns:   cfg.MaintenanceRuns,
		updateRatio: cfg.UpdateRatio,
		policy:      cfg.MaintenancePolicy,
		jobOverhead: cfg.JobOverhead,
		names:       names,
		trace:       tr,
		ctx:         cfg.Ctx,
	}, nil
}

// Advisor re-prices the shared problem for one tariff: provider ×
// instance type × fleet size. Zero values select the paper's defaults
// ("small", 5). The returned advisor is bit-identical in behavior to
// New with the same parameters — construction path is shared — but
// costs only the tariff-dependent rebuild.
func (sh *Shared) Advisor(prov pricing.Provider, instanceType string, instances int) (*Advisor, error) {
	t0 := sh.trace.StartTimer()
	if instanceType == "" {
		instanceType = "small"
	}
	if instances == 0 {
		instances = 5
	}
	cl, err := cluster.New(prov, instanceType, instances)
	if err != nil {
		return nil, err
	}
	cl.JobOverhead = sh.jobOverhead
	est := views.NewEstimator(sh.Lat, cl)
	est.MaintenanceRuns = sh.maintRuns
	est.UpdateRatio = sh.updateRatio
	est.Policy = sh.policy
	base := costmodel.Plan{
		Cluster:       cl,
		Months:        sh.months,
		DatasetSize:   sh.datasetSize,
		MonthlyEgress: sh.egress,
	}
	ev, err := optimizer.NewEvaluator(est, sh.W, base)
	if err != nil {
		return nil, err
	}
	sess, err := sh.Kern.RepriceFor(ev)
	if err != nil {
		return nil, err
	}
	sh.trace.ObserveSince(obs.PhaseBind, t0)
	return &Advisor{
		Lat:        sh.Lat,
		Cl:         cl,
		Est:        est,
		W:          sh.W,
		Ev:         ev,
		Candidates: sh.Candidates,
		Solver:     sh.Solver,
		Seed:       sh.Seed,
		trace:      sh.trace,
		sess:       sess,
		names:      sh.names,
		ctx:        sh.ctx,
	}, nil
}

// New builds an advisor from a config: the shared structure plus one
// tariff binding.
func New(cfg Config) (*Advisor, error) {
	sh, err := NewShared(cfg)
	if err != nil {
		return nil, err
	}
	prov := pricing.AWS2012()
	if cfg.Provider != nil {
		prov = *cfg.Provider
	}
	if cfg.Granularity != nil {
		prov.Compute.Granularity = *cfg.Granularity
	}
	return sh.Advisor(prov, cfg.InstanceType, cfg.Instances)
}

// Session exposes the advisor's kernel binding: the exact scenario
// solvers over the shared structure (bit-equal to the Evaluator's), plus
// the incremental engine the search solvers reuse. The comparison
// engine's break-even sweeps run on it directly. The session owns
// mutable scratch (it is what the advisor's mutex guards), so callers
// must not use it concurrently with the advisor's own solvers.
func (a *Advisor) Session() *optimizer.KernelSession { return a.sess }

// Recommendation is a solved scenario with context for reporting.
type Recommendation struct {
	Scenario     string
	Selection    optimizer.Selection
	BaselineTime time.Duration
	BaselineBill costmodel.Bill
	ViewNames    []string
}

// TimeImprovement is (Tbase − Twith)/Tbase.
func (r Recommendation) TimeImprovement() float64 {
	if r.BaselineTime <= 0 {
		return 0
	}
	return float64(r.BaselineTime-r.Selection.Time) / float64(r.BaselineTime)
}

// CostImprovement is (Cbase − Cwith)/Cbase; negative means views cost more.
func (r Recommendation) CostImprovement() float64 {
	base := r.BaselineBill.Total().Dollars()
	if base <= 0 {
		return 0
	}
	return (base - r.Selection.Bill.Total().Dollars()) / base
}

// Render produces a human-readable report.
func (r Recommendation) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Scenario %s — %s\n", r.Scenario, feasibility(r.Selection.Feasible))
	t := report.NewTable("",
		"", "workload time", "total cost", "compute", "storage", "transfer")
	t.AddRow("without views", fmt.Sprintf("%.3fh", r.BaselineTime.Hours()),
		r.BaselineBill.Total(), r.BaselineBill.Compute.Total(), r.BaselineBill.Storage, r.BaselineBill.Transfer)
	t.AddRow("with views", fmt.Sprintf("%.3fh", r.Selection.Time.Hours()),
		r.Selection.Bill.Total(), r.Selection.Bill.Compute.Total(), r.Selection.Bill.Storage, r.Selection.Bill.Transfer)
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "time improvement: %s   cost improvement: %s\n",
		report.Percent(r.TimeImprovement()), report.Percent(r.CostImprovement()))
	if len(r.ViewNames) == 0 {
		sb.WriteString("materialize: nothing\n")
	} else {
		fmt.Fprintf(&sb, "materialize: %s\n", strings.Join(r.ViewNames, ", "))
	}
	return sb.String()
}

func feasibility(ok bool) string {
	if ok {
		return "constraint satisfied"
	}
	return "CONSTRAINT NOT SATISFIABLE (best effort shown)"
}

func (a *Advisor) recommend(scenario string, sel optimizer.Selection) (Recommendation, error) {
	baseT, baseBill, err := a.sess.Base()
	if err != nil {
		return Recommendation{}, err
	}
	names := make([]string, len(sel.Points))
	for i, p := range sel.Points {
		names[i] = a.viewName(p)
	}
	return Recommendation{
		Scenario:     scenario,
		Selection:    sel,
		BaselineTime: baseT,
		BaselineBill: baseBill,
		ViewNames:    names,
	}, nil
}

// PlanFor reconstructs the priced plan behind a selection, enabling
// itemized invoice rendering (costmodel.Itemize).
func (a *Advisor) PlanFor(sel optimizer.Selection) costmodel.Plan {
	return a.Ev.Base.WithViews(
		a.Est.ViewsSize(sel.Points),
		a.Est.WorkloadTime(a.W, sel.Points),
		a.Est.MaintenanceTimeForWorkload(sel.Points, a.W),
		a.Est.TotalMaterializationTime(sel.Points),
	)
}

// useSearch reports whether the advisor dispatches to the metaheuristic
// engine, and searchOpts its deterministic configuration.
func (a *Advisor) useSearch() bool { return a.Solver == SolverSearch }

// searchOpts shares the session's pinned incremental engine with the
// search solvers, so a search solve re-prices over the kernel's
// answering lists instead of rebuilding them.
func (a *Advisor) searchOpts() search.Options {
	return search.Options{Seed: a.Seed, Engine: a.sess.Engine(), Ctx: a.ctx}
}

// advise runs one scenario through the configured engine and wraps the
// selection into a recommendation — the single dispatch point between
// the knapsack DPs and the metaheuristic search. The search path first
// solves the (cheap) linearized knapsack and warm-starts from its
// selection, so a search recommendation is never worse than the
// knapsack's under the exact re-priced objective — the guarantee the
// large-lattice experiments assert, held on the product path.
func (a *Advisor) advise(scenario string, knapsack func() (optimizer.Selection, error), searcher func(warm optimizer.Selection) (optimizer.Selection, error)) (Recommendation, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t0 := a.trace.StartTimer()
	sel, err := knapsack()
	if err == nil && a.useSearch() {
		sel, err = searcher(sel)
	}
	a.trace.ObserveSince(obs.PhaseSolve, t0)
	if err != nil {
		return Recommendation{}, err
	}
	return a.recommend(scenario, sel)
}

// warmOpts is searchOpts seeded with a warm-start selection.
func (a *Advisor) warmOpts(warm optimizer.Selection) search.Options {
	opts := a.searchOpts()
	opts.Starts = [][]lattice.Point{warm.Points}
	return opts
}

// AdviseBudget solves scenario MV1: fastest workload within the budget.
func (a *Advisor) AdviseBudget(budget money.Money) (Recommendation, error) {
	return a.advise("MV1 (budget limit)",
		func() (optimizer.Selection, error) { return a.sess.SolveMV1(budget) },
		func(warm optimizer.Selection) (optimizer.Selection, error) {
			return search.SolveMV1(a.Ev, a.Candidates, budget, a.warmOpts(warm))
		},
	)
}

// AdviseDeadline solves scenario MV2: cheapest bill within the time limit.
func (a *Advisor) AdviseDeadline(limit time.Duration) (Recommendation, error) {
	return a.advise("MV2 (response-time limit)",
		func() (optimizer.Selection, error) { return a.sess.SolveMV2(limit) },
		func(warm optimizer.Selection) (optimizer.Selection, error) {
			return search.SolveMV2(a.Ev, a.Candidates, limit, a.warmOpts(warm))
		},
	)
}

// AdviseTradeoff solves scenario MV3 with the given α weight on time.
func (a *Advisor) AdviseTradeoff(alpha float64) (Recommendation, error) {
	return a.advise(fmt.Sprintf("MV3 (tradeoff, α=%.2g)", alpha),
		func() (optimizer.Selection, error) { return a.sess.SolveMV3(alpha, optimizer.RawTradeoff) },
		func(warm optimizer.Selection) (optimizer.Selection, error) {
			return search.SolveMV3(a.Ev, a.Candidates, alpha, optimizer.RawTradeoff, a.warmOpts(warm))
		},
	)
}

// ParetoPoint is one (time, cost) outcome on the tradeoff frontier.
type ParetoPoint struct {
	Alpha float64
	Time  time.Duration
	Cost  money.Money
	Views int
	// Degraded marks a point whose search stopped at the solve deadline
	// (see Config.Ctx); the point is still exactly priced and never
	// worse than its knapsack warm start.
	Degraded bool
}

// ParetoFront sweeps α over [0,1] in the given number of steps and returns
// the non-dominated (time, cost) outcomes — the frontier Figures 2–4 of
// the paper sketch.
func (a *Advisor) ParetoFront(steps int) ([]ParetoPoint, error) {
	if steps < 2 {
		return nil, fmt.Errorf("core: need at least 2 sweep steps, got %d", steps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	t0 := a.trace.StartTimer()
	defer a.trace.ObserveSince(obs.PhaseSolve, t0)
	// The knapsack per-α sweep runs in both modes: in knapsack mode its
	// selections are the frontier candidates; in search mode they become
	// warm starts, carrying the advise dispatch's guarantee over to the
	// sweep — the search frontier is never worse than the knapsack's at
	// any α (warm starts are priced first; cached re-scores are free).
	knapSels := make([]optimizer.Selection, steps)
	for i := 0; i < steps; i++ {
		alpha := float64(i) / float64(steps-1)
		sel, err := a.sess.SolveMV3(alpha, optimizer.NormalizedTradeoff)
		if err != nil {
			return nil, err
		}
		knapSels[i] = sel
	}
	var all []ParetoPoint
	if a.useSearch() {
		// ParetoSweep's evaluation budget spans the whole sweep; scale it
		// by the step count so every α gets a real search, not just the
		// first few before the shared budget runs dry. Warm starts are
		// deduplicated (adjacent α often agree) under a collision-free
		// level-index key.
		opts := a.searchOpts()
		opts.MaxEvals = steps * search.DefaultMaxEvals
		seen := make(map[string]bool)
		for _, ksel := range knapSels {
			key := fmt.Sprintf("%v", ksel.Points)
			if !seen[key] {
				seen[key] = true
				opts.Starts = append(opts.Starts, ksel.Points)
			}
		}
		sweep, err := search.ParetoSweep(a.Ev, a.Candidates, steps, optimizer.NormalizedTradeoff, opts)
		if err != nil {
			return nil, err
		}
		for _, as := range sweep {
			all = append(all, ParetoPoint{
				Alpha:    as.Alpha,
				Time:     as.Sel.Time,
				Cost:     as.Sel.Bill.Total(),
				Views:    len(as.Sel.Points),
				Degraded: as.Sel.Degraded,
			})
		}
	} else {
		for i, sel := range knapSels {
			all = append(all, ParetoPoint{
				Alpha: float64(i) / float64(steps-1),
				Time:  sel.Time,
				Cost:  sel.Bill.Total(),
				Views: len(sel.Points),
			})
		}
	}
	return paretoFilter(all), nil
}

// paretoFilter keeps the non-dominated points of a sweep.
func paretoFilter(all []ParetoPoint) []ParetoPoint {
	var front []ParetoPoint
	for i, p := range all {
		dominated := false
		for j, q := range all {
			if i == j {
				continue
			}
			if q.Time <= p.Time && q.Cost <= p.Cost && (q.Time < p.Time || q.Cost < p.Cost) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	return front
}
