package core

import (
	"testing"
	"time"

	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/optimizer"
	"vmcloud/internal/schema"
	"vmcloud/internal/workload"
)

func solverAdvisor(t *testing.T, solver string, seed int64) *Advisor {
	t.Helper()
	l, err := lattice.New(schema.Sales(), 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Sales(l, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 30
	}
	adv, err := New(Config{Workload: w, Solver: solver, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return adv
}

// TestSearchMatchesKnapsackOnPaperLattice pins the small-lattice
// contract: on the paper's 16-node sales lattice the metaheuristic
// engine reproduces the knapsack selection's exact re-priced time and
// bill for MV1 and MV2 (where the knapsack-plus-repair is already
// optimal), and never does worse on MV3's weighted objective (where the
// marginal linearization overbuys — search drops the views whose exact
// cost outweighs their savings).
func TestSearchMatchesKnapsackOnPaperLattice(t *testing.T) {
	for _, seed := range []int64{0, 1, 42} {
		knap := solverAdvisor(t, SolverKnapsack, 0)
		srch := solverAdvisor(t, SolverSearch, seed)

		kb, err := knap.AdviseBudget(money.FromDollars(25))
		if err != nil {
			t.Fatal(err)
		}
		sb, err := srch.AdviseBudget(money.FromDollars(25))
		if err != nil {
			t.Fatal(err)
		}
		if sb.Selection.Time != kb.Selection.Time || sb.Selection.Bill.Total() != kb.Selection.Bill.Total() {
			t.Errorf("seed %d mv1: search %v/%v, knapsack %v/%v", seed,
				sb.Selection.Time, sb.Selection.Bill.Total(), kb.Selection.Time, kb.Selection.Bill.Total())
		}
		if sb.Selection.Strategy != "mv1-search" {
			t.Errorf("seed %d: strategy %q", seed, sb.Selection.Strategy)
		}

		kd, err := knap.AdviseDeadline(4 * time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := srch.AdviseDeadline(4 * time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if sd.Selection.Time != kd.Selection.Time || sd.Selection.Bill.Total() != kd.Selection.Bill.Total() {
			t.Errorf("seed %d mv2: search %v/%v, knapsack %v/%v", seed,
				sd.Selection.Time, sd.Selection.Bill.Total(), kd.Selection.Time, kd.Selection.Bill.Total())
		}

		kt, err := knap.AdviseTradeoff(0.5)
		if err != nil {
			t.Fatal(err)
		}
		st, err := srch.AdviseTradeoff(0.5)
		if err != nil {
			t.Fatal(err)
		}
		ko := optimizer.Objective(0.5, kt.Selection.Time, kt.Selection.Bill, optimizer.RawTradeoff, 0, kt.Selection.Bill)
		so := optimizer.Objective(0.5, st.Selection.Time, st.Selection.Bill, optimizer.RawTradeoff, 0, st.Selection.Bill)
		if so > ko+1e-9 {
			t.Errorf("seed %d mv3: search objective %g worse than knapsack %g", seed, so, ko)
		}
	}
}

// TestSearchParetoFront: the search-mode sweep produces a valid frontier
// (non-dominated, deterministic under a fixed seed).
func TestSearchParetoFront(t *testing.T) {
	adv := solverAdvisor(t, SolverSearch, 9)
	front, err := adv.ParetoFront(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	for i, p := range front {
		for j, q := range front {
			if i != j && q.Time <= p.Time && q.Cost <= p.Cost && (q.Time < p.Time || q.Cost < p.Cost) {
				t.Errorf("frontier point %d dominated by %d", i, j)
			}
		}
	}
	again, err := solverAdvisor(t, SolverSearch, 9).ParetoFront(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(front) {
		t.Fatalf("frontier size changed across identical runs: %d vs %d", len(front), len(again))
	}
	for i := range front {
		if front[i] != again[i] {
			t.Fatalf("frontier point %d differs across identical runs", i)
		}
	}
}

// TestAutoSolverResolution: "auto" resolves by candidate count — on the
// sales lattice (at most 15 candidates) it must stay on the knapsack.
func TestAutoSolverResolution(t *testing.T) {
	adv := solverAdvisor(t, SolverAuto, 0)
	if adv.Solver != SolverKnapsack {
		t.Fatalf("auto on the sales lattice resolved to %q, want knapsack (have %d candidates)",
			adv.Solver, len(adv.Candidates))
	}
	if len(adv.Candidates) > AutoSearchThreshold {
		t.Fatalf("sales candidate pool %d exceeds the auto threshold %d", len(adv.Candidates), AutoSearchThreshold)
	}
}

func TestCanonSolver(t *testing.T) {
	cases := map[string]string{
		"":         SolverKnapsack,
		"knapsack": SolverKnapsack,
		" Search ": SolverSearch,
		"AUTO":     SolverAuto,
	}
	for in, want := range cases {
		got, err := CanonSolver(in)
		if err != nil || got != want {
			t.Errorf("CanonSolver(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := CanonSolver("quantum"); err == nil {
		t.Error("CanonSolver accepted \"quantum\"")
	}
	if _, err := New(Config{Solver: "quantum"}); err == nil {
		t.Error("New accepted an unknown solver")
	}
}

// TestSearchParetoNeverWorseOnLargeLattice pins the pareto half of the
// "search never worse than knapsack" guarantee on the setting search
// exists for: on the 256-cuboid lattice, the search front's extreme
// points (fastest and cheapest) must be at least as good as the
// knapsack front's — the α=1 and α=0 sweeps are warm-started from the
// knapsack's own selections and priced before any budget can run dry.
func TestSearchParetoNeverWorseOnLargeLattice(t *testing.T) {
	sch, err := schema.Synthetic(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lattice.New(sch, 1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Random(l, 20, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	front := func(solver string) []ParetoPoint {
		adv, err := New(Config{
			Schema: sch, FactRows: 1_000_000_000, Workload: w,
			CandidateBudget: 32, MaintenanceRuns: 6, UpdateRatio: 0.50,
			Solver: solver, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if solver == SolverSearch && len(adv.Candidates) <= AutoSearchThreshold {
			t.Fatalf("only %d candidates — not a large instance", len(adv.Candidates))
		}
		f, err := adv.ParetoFront(11)
		if err != nil {
			t.Fatal(err)
		}
		if len(f) == 0 {
			t.Fatal("empty frontier")
		}
		return f
	}
	knap, srch := front(SolverKnapsack), front(SolverSearch)
	extremes := func(f []ParetoPoint) (minT time.Duration, minC money.Money) {
		minT, minC = f[0].Time, f[0].Cost
		for _, p := range f[1:] {
			if p.Time < minT {
				minT = p.Time
			}
			if p.Cost < minC {
				minC = p.Cost
			}
		}
		return minT, minC
	}
	kT, kC := extremes(knap)
	sT, sC := extremes(srch)
	if sT > kT {
		t.Errorf("search front's fastest point %v worse than knapsack's %v", sT, kT)
	}
	if sC > kC {
		t.Errorf("search front's cheapest point %v worse than knapsack's %v", sC, kC)
	}
}
