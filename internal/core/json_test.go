package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"vmcloud/internal/money"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

func TestConfigJSONDefaults(t *testing.T) {
	var cj ConfigJSON
	if err := cj.Normalize(); err != nil {
		t.Fatal(err)
	}
	if cj.Provider != "aws-2012" || cj.InstanceType != "small" || cj.Instances != 5 {
		t.Errorf("cluster defaults: %+v", cj)
	}
	if cj.FactRows != 200_000_000 || cj.Months != 1 {
		t.Errorf("dataset defaults: %+v", cj)
	}
	if cj.CandidateBudget != 8 || cj.MaintenanceRuns != 4 || cj.UpdateRatio != 0.20 {
		t.Errorf("advisor defaults: %+v", cj)
	}
	if cj.MaintenancePolicy != "immediate" || cj.JobOverhead != "2m0s" {
		t.Errorf("policy defaults: %+v", cj)
	}
	if len(cj.Workload) != 10 {
		t.Errorf("workload defaulted to %d queries", len(cj.Workload))
	}
	if cj.Workload[0].Frequency != 1 || len(cj.Workload[0].Levels) != 2 {
		t.Errorf("first query: %+v", cj.Workload[0])
	}
}

// TestConfigJSONCanonical checks the property the serving cache depends
// on: equivalent spellings normalize to identical structs.
func TestConfigJSONCanonical(t *testing.T) {
	spellings := []string{
		`{}`,
		`{"provider":"aws-2012","instances":5}`,
		`{"queries":10,"frequency":1,"job_overhead":"120s"}`,
		`{"maintenance_policy":"immediate","update_ratio":0.2}`,
	}
	var want []byte
	for i, s := range spellings {
		var cj ConfigJSON
		if err := json.Unmarshal([]byte(s), &cj); err != nil {
			t.Fatal(err)
		}
		if err := cj.Normalize(); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		got, err := json.Marshal(cj)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Errorf("spelling %d diverged:\n%s\nvs\n%s", i, got, want)
		}
	}
}

func TestConfigJSONNormalizeErrors(t *testing.T) {
	cases := map[string]ConfigJSON{
		"unknown provider":     {Provider: "vaporware"},
		"bad provider spec":    {ProviderSpec: json.RawMessage(`{"name":""}`)},
		"negative fleet":       {Instances: -1},
		"negative rows":        {FactRows: -5},
		"negative months":      {Months: -1},
		"bad policy":           {MaintenancePolicy: "psychic"},
		"bad overhead":         {JobOverhead: "a while"},
		"negative overhead":    {JobOverhead: "-2m"},
		"oversized sales":      {Queries: 99},
		"negative frequency":   {Frequency: -3},
		"workload bad levels":  {Workload: []workload.QueryJSON{{Levels: []string{"eon", "country"}}}},
		"workload empty query": {Workload: []workload.QueryJSON{{Name: "mystery"}}},
	}
	for name, cj := range cases {
		if err := cj.Normalize(); err == nil {
			t.Errorf("%s: accepted: %+v", name, cj)
		}
	}
}

func TestConfigJSONToConfig(t *testing.T) {
	var cj ConfigJSON
	if err := json.Unmarshal([]byte(`{
		"provider":"stratus","instance_type":"large","instances":3,
		"fact_rows":10000000,"months":2,"queries":5,"frequency":30,
		"maintenance_policy":"deferred","job_overhead":"90s"
	}`), &cj); err != nil {
		t.Fatal(err)
	}
	cfg, err := cj.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Provider.Name != "stratus" || cfg.InstanceType != "large" || cfg.Instances != 3 {
		t.Errorf("cluster config: %+v", cfg)
	}
	if cfg.MaintenancePolicy != views.DeferredMaintenance {
		t.Error("policy not deferred")
	}
	if cfg.JobOverhead != 90*time.Second {
		t.Errorf("overhead = %v", cfg.JobOverhead)
	}
	if len(cfg.Workload.Queries) != 5 || cfg.Workload.Queries[0].Frequency != 30 {
		t.Errorf("workload: %+v", cfg.Workload)
	}
	// The resolved config must actually wire an advisor.
	adv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Candidates) == 0 {
		t.Error("no candidates generated")
	}
}

func TestRecommendationJSON(t *testing.T) {
	adv := salesAdvisor(t, 5)
	rec, err := adv.AdviseBudget(money.FromDollars(50))
	if err != nil {
		t.Fatal(err)
	}
	rj := rec.JSON()
	if rj.Scenario != rec.Scenario || rj.Feasible != rec.Selection.Feasible {
		t.Errorf("header fields: %+v", rj)
	}
	if len(rj.Views) != len(rj.Points) {
		t.Errorf("views/points mismatch: %v vs %v", rj.Views, rj.Points)
	}
	if rj.Bill.Total != rec.Selection.Bill.Total() {
		t.Errorf("bill total %v != %v", rj.Bill.Total, rec.Selection.Bill.Total())
	}
	if rj.Bill.Compute != rec.Selection.Bill.Compute.Total() {
		t.Errorf("compute %v != %v", rj.Bill.Compute, rec.Selection.Bill.Compute.Total())
	}
	if !strings.Contains(rj.Report, "materialize:") {
		t.Errorf("report: %s", rj.Report)
	}
	b, err := json.Marshal(rj)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"scenario"`, `"bill"`, `"baseline"`, `"improvement"`, `"total":"$`} {
		if !strings.Contains(string(b), field) {
			t.Errorf("wire missing %s:\n%s", field, b)
		}
	}
}

func TestParetoJSON(t *testing.T) {
	adv := salesAdvisor(t, 5)
	front, err := adv.ParetoFront(5)
	if err != nil {
		t.Fatal(err)
	}
	wire := ParetoJSON(front)
	if len(wire) != len(front) {
		t.Fatalf("len %d != %d", len(wire), len(front))
	}
	for i := range wire {
		if wire[i].Cost != front[i].Cost || wire[i].Views != front[i].Views {
			t.Errorf("point %d: %+v vs %+v", i, wire[i], front[i])
		}
		if _, err := time.ParseDuration(wire[i].Time); err != nil {
			t.Errorf("point %d time %q: %v", i, wire[i].Time, err)
		}
	}
}

func TestDatasetSizeOf(t *testing.T) {
	adv := salesAdvisor(t, 5)
	if DatasetSizeOf(adv) <= 0 {
		t.Error("dataset size not positive")
	}
}

func TestConfigJSONModelGuards(t *testing.T) {
	cases := map[string]ConfigJSON{
		"negative update ratio":     {UpdateRatio: -0.5},
		"update ratio above one":    {UpdateRatio: 1.5},
		"negative maintenance runs": {MaintenanceRuns: -3},
		"negative candidate budget": {CandidateBudget: -1},
	}
	for name, cj := range cases {
		if err := cj.Normalize(); err == nil {
			t.Errorf("%s: accepted: %+v", name, cj)
		}
	}
}
