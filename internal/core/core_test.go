package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/schema"
	"vmcloud/internal/workload"
)

func salesAdvisor(t *testing.T, nQueries int) *Advisor {
	t.Helper()
	l, err := lattice.New(schema.Sales(), 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Sales(l, nQueries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 30
	}
	adv, err := New(Config{Workload: w})
	if err != nil {
		t.Fatal(err)
	}
	return adv
}

func TestNewDefaults(t *testing.T) {
	adv := salesAdvisor(t, 5)
	if adv.Cl.NbInstances != 5 || adv.Cl.Instance.Name != "small" {
		t.Errorf("default fleet = %d×%s", adv.Cl.NbInstances, adv.Cl.Instance.Name)
	}
	if adv.Lat.FactRows != 200_000_000 {
		t.Errorf("fact rows = %d", adv.Lat.FactRows)
	}
	if len(adv.Candidates) == 0 {
		t.Error("no candidates generated")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty workload accepted")
	}
	l, _ := lattice.New(schema.Sales(), 1000)
	w, _ := workload.Sales(l, 3)
	if _, err := New(Config{Workload: w, InstanceType: "mega"}); err == nil {
		t.Error("unknown instance type accepted")
	}
	bad := schema.Sales()
	bad.Measures = nil
	if _, err := New(Config{Workload: w, Schema: bad}); err == nil {
		t.Error("invalid schema accepted")
	}
}

func TestAdviseBudget(t *testing.T) {
	adv := salesAdvisor(t, 10)
	_, baseBill, err := adv.Ev.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.AdviseBudget(baseBill.Total())
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Selection.Feasible {
		t.Error("baseline budget should be feasible")
	}
	if rec.TimeImprovement() <= 0 {
		t.Errorf("no time improvement: %v", rec.TimeImprovement())
	}
	if rec.Selection.Bill.Total() > baseBill.Total() {
		t.Errorf("bill %v exceeds budget %v", rec.Selection.Bill.Total(), baseBill.Total())
	}
	out := rec.Render()
	for _, frag := range []string{"MV1", "without views", "with views", "materialize:"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestAdviseDeadline(t *testing.T) {
	adv := salesAdvisor(t, 10)
	baseT, _, _ := adv.Ev.Evaluate(nil)
	rec, err := adv.AdviseDeadline(baseT / 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Selection.Feasible {
		t.Fatalf("halving the workload time should be achievable, got %v", rec.Selection.Time)
	}
	if rec.Selection.Time > baseT/2 {
		t.Errorf("time %v over limit %v", rec.Selection.Time, baseT/2)
	}
	// In the recurring regime views also cut the bill.
	if rec.CostImprovement() <= 0 {
		t.Errorf("expected positive cost improvement, got %v", rec.CostImprovement())
	}
}

func TestAdviseDeadlineInfeasible(t *testing.T) {
	adv := salesAdvisor(t, 10)
	rec, err := adv.AdviseDeadline(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Selection.Feasible {
		t.Error("millisecond deadline reported feasible")
	}
	if !strings.Contains(rec.Render(), "NOT SATISFIABLE") {
		t.Error("render should flag infeasibility")
	}
}

func TestAdviseTradeoff(t *testing.T) {
	adv := salesAdvisor(t, 10)
	rec, err := adv.AdviseTradeoff(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Selection.Points) == 0 {
		t.Error("tradeoff selected no views in the recurring regime")
	}
	if !strings.Contains(rec.Scenario, "α=0.5") {
		t.Errorf("scenario label = %q", rec.Scenario)
	}
	if _, err := adv.AdviseTradeoff(-0.1); err == nil {
		t.Error("negative alpha accepted")
	}
}

func TestParetoFront(t *testing.T) {
	adv := salesAdvisor(t, 10)
	front, err := adv.ParetoFront(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	// No point dominates another.
	for i, p := range front {
		for j, q := range front {
			if i == j {
				continue
			}
			if q.Time <= p.Time && q.Cost <= p.Cost && (q.Time < p.Time || q.Cost < p.Cost) {
				t.Errorf("front point %d dominated by %d", i, j)
			}
		}
	}
	if _, err := adv.ParetoFront(1); err == nil {
		t.Error("single-step sweep accepted")
	}
}

func TestCustomProvider(t *testing.T) {
	l, _ := lattice.New(schema.Sales(), 1_000_000)
	w, _ := workload.Sales(l, 3)
	prov := pricing.StratusCloud()
	adv, err := New(Config{Workload: w, Provider: &prov, InstanceType: "large", Instances: 2, FactRows: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Cl.Provider.Name != "stratus" || adv.Cl.Instance.Name != "large" {
		t.Errorf("provider wiring wrong: %s", adv.Cl)
	}
	if _, err := adv.AdviseBudget(money.FromDollars(100)); err != nil {
		t.Fatal(err)
	}
}

func TestRecommendationRates(t *testing.T) {
	r := Recommendation{}
	if r.TimeImprovement() != 0 || r.CostImprovement() != 0 {
		t.Error("zero baselines should yield zero rates")
	}
}

// TestAdvisorConcurrentSolves pins the advisor's concurrency contract:
// one advisor may be shared across goroutines (solves serialize on the
// internal mutex, guarding the kernel session's scratch state), and
// every concurrent solve must equal the sequential answer. Run under
// -race in CI.
func TestAdvisorConcurrentSolves(t *testing.T) {
	adv := salesAdvisor(t, 10)
	budget := money.FromDollars(25)
	want, err := adv.AdviseBudget(budget)
	if err != nil {
		t.Fatal(err)
	}
	wantMV2, err := adv.AdviseDeadline(4 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	errs := make(chan error, 2*goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			rec, err := adv.AdviseBudget(budget)
			if err == nil && rec.Selection.Bill.Total() != want.Selection.Bill.Total() {
				err = fmt.Errorf("concurrent mv1 bill %v != sequential %v", rec.Selection.Bill.Total(), want.Selection.Bill.Total())
			}
			errs <- err
		}()
		go func() {
			rec, err := adv.AdviseDeadline(4 * time.Hour)
			if err == nil && rec.Selection.Time != wantMV2.Selection.Time {
				err = fmt.Errorf("concurrent mv2 time %v != sequential %v", rec.Selection.Time, wantMV2.Selection.Time)
			}
			errs <- err
		}()
	}
	for i := 0; i < 2*goroutines; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}
