package experiments

import (
	"testing"
)

// TestLargeLatticeSearchBeatsKnapsack is the acceptance bar for the
// metaheuristic engine: on the generated 4-dimension × 4-level
// (256-cuboid) lattice, the search's exact re-priced objective must be
// at least as good as the linearized knapsack's under identical
// constraints and a fixed evaluation budget — for MV1 (workload time
// within the same budget) and MV3 (the raw Formula 15 objective).
func TestLargeLatticeSearchBeatsKnapsack(t *testing.T) {
	strictly := 0
	for _, seed := range []int64{1, 2, 3} {
		r, err := RunLargeLattice(LargeLatticeConfig{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if r.Nodes != 256 {
			t.Fatalf("seed %d: %d cuboids, want 256", seed, r.Nodes)
		}
		if r.Candidates <= 15 {
			t.Fatalf("seed %d: only %d candidates — not a large instance", seed, r.Candidates)
		}
		// MV1: both solvers must respect the budget exactly; search must
		// be at least as fast.
		if !r.KnapsackMV1.Feasible || !r.SearchMV1.Feasible {
			t.Fatalf("seed %d: infeasible mv1 outcome (knap %v, search %v)",
				seed, r.KnapsackMV1.Feasible, r.SearchMV1.Feasible)
		}
		if r.SearchMV1.Bill.Total() > r.Budget {
			t.Errorf("seed %d: search bill %v exceeds budget %v", seed, r.SearchMV1.Bill.Total(), r.Budget)
		}
		if r.SearchMV1.Time > r.KnapsackMV1.Time {
			t.Errorf("seed %d: search mv1 time %v worse than knapsack %v",
				seed, r.SearchMV1.Time, r.KnapsackMV1.Time)
		}
		if r.SearchMV1.Time < r.KnapsackMV1.Time {
			strictly++
		}
		// MV3: the exact weighted objective must not regress.
		if ko, so := r.MV3Objective(r.KnapsackMV3), r.MV3Objective(r.SearchMV3); so > ko+1e-9 {
			t.Errorf("seed %d: search mv3 objective %g worse than knapsack %g", seed, so, ko)
		}
	}
	// The point of the subsystem: on large lattices the linearization
	// error is real, so search should win outright somewhere.
	if strictly == 0 {
		t.Error("search never strictly improved on the knapsack across the seeds — instance too easy")
	}
}

// TestLargeLatticeDeterministic pins reproducibility: identical configs
// (and seeds) must yield identical exact outcomes.
func TestLargeLatticeDeterministic(t *testing.T) {
	a, err := RunLargeLattice(LargeLatticeConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLargeLattice(LargeLatticeConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("identical configs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

func TestLargeLatticeTableRenders(t *testing.T) {
	r, err := RunLargeLattice(LargeLatticeConfig{Seed: 1, Queries: 8, CandidateBudget: 12, MaxEvals: 500})
	if err != nil {
		t.Fatal(err)
	}
	if s := LargeLatticeTable(r).String(); s == "" {
		t.Fatal("empty table")
	}
}
