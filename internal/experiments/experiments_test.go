package experiments

import (
	"strings"
	"testing"

	"vmcloud/internal/money"
)

func TestRunMV1ShapeMatchesPaper(t *testing.T) {
	rows, err := RunMV1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if !r.Feasible {
			t.Errorf("%dq: selection infeasible", r.Queries)
		}
		// The paper's headline: views are always desirable — response time
		// strictly improves under the same budget.
		if r.TimeWith >= r.TimeWithout {
			t.Errorf("%dq: time with views %v not better than without %v", r.Queries, r.TimeWith, r.TimeWithout)
		}
		if r.IPRate <= 0 || r.IPRate >= 1 {
			t.Errorf("%dq: IP rate %v out of (0,1)", r.Queries, r.IPRate)
		}
		if r.BillWith.Total() > r.Budget {
			t.Errorf("%dq: bill %v exceeds budget %v", r.Queries, r.BillWith.Total(), r.Budget)
		}
		if len(r.Views) == 0 {
			t.Errorf("%dq: no views selected", r.Queries)
		}
	}
	// Table 6's shape: the improvement rate grows with the workload size
	// (25% → 36% → 60% in the paper).
	if !(rows[0].IPRate < rows[1].IPRate && rows[1].IPRate < rows[2].IPRate) {
		t.Errorf("IP rates not increasing: %v / %v / %v",
			rows[0].IPRate, rows[1].IPRate, rows[2].IPRate)
	}
	// And the magnitudes sit in the paper's band (roughly 15–75%).
	for _, r := range rows {
		if r.IPRate < 0.10 || r.IPRate > 0.85 {
			t.Errorf("%dq: IP rate %.1f%% far outside the paper's band", r.Queries, r.IPRate*100)
		}
	}
}

func TestRunMV2ShapeMatchesPaper(t *testing.T) {
	rows, err := RunMV2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if !r.Feasible {
			t.Errorf("%dq: time limit %v not met (time %v)", r.Queries, r.Limit, r.TimeWith)
		}
		if r.TimeWith > r.Limit {
			t.Errorf("%dq: time %v exceeds limit %v", r.Queries, r.TimeWith, r.Limit)
		}
		// Table 7's shape: the bill with views is far below the no-view
		// bill (72–75% in the paper); we require a substantial (>25%)
		// and sane (<95%) improvement.
		if r.ICRate < 0.25 || r.ICRate > 0.95 {
			t.Errorf("%dq: IC rate %.1f%% outside the expected band", r.Queries, r.ICRate*100)
		}
		if len(r.Views) == 0 {
			t.Errorf("%dq: no views selected", r.Queries)
		}
	}
	// Flat-ish across workload sizes: max/min within a factor 2.
	min, max := rows[0].ICRate, rows[0].ICRate
	for _, r := range rows {
		if r.ICRate < min {
			min = r.ICRate
		}
		if r.ICRate > max {
			max = r.ICRate
		}
	}
	if max > 2*min {
		t.Errorf("IC rates not roughly flat: min %.1f%%, max %.1f%%", min*100, max*100)
	}
}

func TestRunMV3ShapeMatchesPaper(t *testing.T) {
	for _, alpha := range []float64{0.3, 0.65, 0.7} {
		rows, err := RunMV3(alpha)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("α=%g: rows = %d", alpha, len(rows))
		}
		for _, r := range rows {
			// Views always at least match the no-view objective.
			if r.ObjWith > r.ObjWithout {
				t.Errorf("α=%g %dq: objective worsened (%.3f → %.3f)", alpha, r.Queries, r.ObjWithout, r.ObjWith)
			}
			if r.Rate < 0 || r.Rate > 0.95 {
				t.Errorf("α=%g %dq: rate %.1f%% out of band", alpha, r.Queries, r.Rate*100)
			}
			if len(r.Views) == 0 {
				t.Errorf("α=%g %dq: no views selected", alpha, r.Queries)
			}
		}
	}
}

func TestTablesRender(t *testing.T) {
	mv1, err := RunMV1()
	if err != nil {
		t.Fatal(err)
	}
	if s := Table6(mv1).String(); !strings.Contains(s, "IP rate") {
		t.Errorf("Table6 rendering:\n%s", s)
	}
	if s := Figure5a(mv1).String(); !strings.Contains(s, "without") {
		t.Errorf("Figure5a rendering:\n%s", s)
	}
	mv2, err := RunMV2()
	if err != nil {
		t.Fatal(err)
	}
	if s := Table7(mv2).String(); !strings.Contains(s, "IC rate") {
		t.Errorf("Table7 rendering:\n%s", s)
	}
	if s := Figure5b(mv2).String(); !strings.Contains(s, "$") {
		t.Errorf("Figure5b rendering:\n%s", s)
	}
	a, err := RunMV3(0.3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMV3(0.7)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Table8(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s := tbl.String(); !strings.Contains(s, "α=0.3") {
		t.Errorf("Table8 rendering:\n%s", s)
	}
	if s := Figure5cd(a, "c").String(); !strings.Contains(s, "α=0.3") {
		t.Errorf("Figure5cd rendering:\n%s", s)
	}
	if _, err := Table8(a, nil); err == nil {
		t.Error("mismatched Table8 inputs accepted")
	}
}

func TestWorkedExamples(t *testing.T) {
	checks, err := RunWorkedExamples()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 7 {
		t.Fatalf("checks = %d, want 7", len(checks))
	}
	for _, c := range checks {
		if c.ID == "Example 3" {
			// The known paper typo: we must NOT match the printed value...
			if c.Match {
				t.Errorf("Example 3 unexpectedly matches the paper's misprinted $2131.76")
			}
			// ...but must match the corrected evaluation.
			if c.Computed != money.FromDollars(2101.76).String() {
				t.Errorf("Example 3 computed %s, want $2101.76", c.Computed)
			}
			if c.Note == "" {
				t.Error("Example 3 should carry the typo note")
			}
			continue
		}
		if !c.Match {
			t.Errorf("%s: computed %s, paper %s", c.ID, c.Computed, c.Paper)
		}
	}
}

func TestIntroExample(t *testing.T) {
	ex, err := RunIntroExample()
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.Without.Total(); got != money.FromDollars(62) {
		t.Errorf("without views total = %v, want $62", got)
	}
	if got := ex.With.Total(); got != money.FromDollars(64.6) {
		t.Errorf("with views total = %v, want $64.60", got)
	}
	if ex.SpeedupRate != 0.2 {
		t.Errorf("speedup = %v, want 0.2", ex.SpeedupRate)
	}
	// ≈ 4.19%.
	if ex.CostIncreaseRate < 0.041 || ex.CostIncreaseRate > 0.043 {
		t.Errorf("cost increase = %v, want ≈0.042", ex.CostIncreaseRate)
	}
}

func TestSetupHelpers(t *testing.T) {
	s, err := NewSetup(3, OneShot())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MV1Budget(); err != nil {
		t.Error(err)
	}
	if _, err := s.MV2Limit(); err != nil {
		t.Error(err)
	}
	bad, err := NewSetup(4, OneShot())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.MV1Budget(); err == nil {
		t.Error("budget for unlisted workload size accepted")
	}
}
