// Package experiments reproduces the paper's evaluation (Section 6):
// scenarios MV1, MV2 and MV3 over sales workloads of 3, 5 and 10 queries
// (Figure 5, Tables 6–8), plus golden reproductions of the nine worked
// examples and the introduction's motivating example.
//
// Calibration. The paper ran a one-shot 10 GB workload on a 5-VM
// Hadoop/Pig cluster with 2012 AWS prices. This harness keeps those
// constants — 10 GB dataset, 5 small instances, Tables 2–4 tariffs, ≈0.2 h
// for a full-scan query when 2 small instances are used (50 GB/h) — and
// makes two regimes explicit that the paper leaves implicit:
//
//   - OneShot: each query runs once, views are maintained 5× per period at
//     near-full-recomputation cost (the running example's 5 h maintenance
//     vs 1 h materialization ratio). Views cost more than they save in
//     pure dollars, so MV1's budget genuinely binds — this regime drives
//     the Figure 5(a)/Table 6 reproduction.
//   - Recurring: the workload runs daily over a billed month with weekly
//     incremental maintenance. Views pay for themselves, so lower bills
//     under a response-time cap emerge — this regime drives Figure
//     5(b)/Table 7 and the MV3 tradeoffs of Figure 5(c,d)/Table 8.
//
// Billing granularity is per-minute in both regimes so that sub-hour
// differences register on Figure-5-sized dollar amounts (the paper plots
// budgets of $0.8–$2.4, far below one 5-instance hour block).
package experiments

import (
	"fmt"
	"time"

	"vmcloud/internal/cluster"
	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/optimizer"
	"vmcloud/internal/pricing"
	"vmcloud/internal/schema"
	"vmcloud/internal/units"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// Regime fixes the workload recurrence and maintenance intensity.
type Regime struct {
	Name string
	// Frequency is query executions per billed month.
	Frequency int
	// MaintenanceRuns is maintenance windows per month.
	MaintenanceRuns int
	// UpdateRatio is the delta volume per run as a fraction of the base.
	UpdateRatio float64
}

// OneShot is the paper's measured setting: each query once, heavyweight
// maintenance (5 near-full recomputations, matching the running example's
// maintenance:materialization ratio of 5 h : 1 h).
func OneShot() Regime {
	return Regime{Name: "one-shot", Frequency: 1, MaintenanceRuns: 5, UpdateRatio: 0.93}
}

// Recurring is the pay-as-you-go regime the cost models address: daily
// workload, weekly incremental maintenance over 20% daily-ish churn.
func Recurring() Regime {
	return Regime{Name: "recurring", Frequency: 30, MaintenanceRuns: 4, UpdateRatio: 0.20}
}

// Experiment-wide constants (Section 6.1 analogues).
const (
	// FactRows models the 10 GB extract at 50 B/row.
	FactRows = 200_000_000
	// FleetSize is the paper's 5 virtual machines.
	FleetSize = 5
	// JobOverhead is the Hadoop job startup floor.
	JobOverhead = 2 * time.Minute
	// CandidateBudget is how many candidate views the pre-selection step
	// (the "existing algorithm [8]") hands to the knapsack.
	CandidateBudget = 8
)

// Setup is one fully wired experimental configuration.
type Setup struct {
	Regime     Regime
	NumQueries int
	Lat        *lattice.Lattice
	Cl         *cluster.Cluster
	Est        *views.Estimator
	W          workload.Workload
	Ev         *optimizer.Evaluator
	Cands      []views.Candidate
}

// NewSetup wires the experimental configuration for a workload size.
func NewSetup(nQueries int, regime Regime) (*Setup, error) {
	l, err := lattice.New(schema.Sales(), FactRows)
	if err != nil {
		return nil, err
	}
	prov := pricing.AWS2012()
	prov.Compute.Granularity = units.BillPerMinute
	cl, err := cluster.New(prov, "small", FleetSize)
	if err != nil {
		return nil, err
	}
	cl.JobOverhead = JobOverhead
	est := views.NewEstimator(l, cl)
	est.MaintenanceRuns = regime.MaintenanceRuns
	est.UpdateRatio = regime.UpdateRatio

	w, err := workload.Sales(l, nQueries)
	if err != nil {
		return nil, err
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = regime.Frequency
	}
	egress, err := w.ResultBytes(l)
	if err != nil {
		return nil, err
	}
	base := costmodel.Plan{
		Cluster:       cl,
		Months:        1,
		DatasetSize:   10 * units.GB,
		MonthlyEgress: egress,
	}
	ev, err := optimizer.NewEvaluator(est, w, base)
	if err != nil {
		return nil, err
	}
	cands, err := views.GenerateCandidates(l, w, CandidateBudget)
	if err != nil {
		return nil, err
	}
	return &Setup{
		Regime:     regime,
		NumQueries: nQueries,
		Lat:        l,
		Cl:         cl,
		Est:        est,
		W:          w,
		Ev:         ev,
		Cands:      cands,
	}, nil
}

// Baseline returns the no-view time and bill.
func (s *Setup) Baseline() (time.Duration, costmodel.Bill, error) {
	return s.Ev.Evaluate(nil)
}

// ViewNames renders selected points.
func (s *Setup) ViewNames(pts []lattice.Point) []string {
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = s.Lat.Name(p)
	}
	return out
}

// PaperBudgets are the MV1 budget limits of Table 6, interpreted as the
// compute slack granted on top of the configuration's fixed baseline bill
// (the paper's cluster had no storage/egress line items on its Figure 5
// axes; ours do, so the fixed part is added back to keep the knapsack's
// headroom at the paper's scale).
var PaperBudgets = map[int]money.Money{
	3:  money.MustParse("$0.80"),
	5:  money.MustParse("$1.20"),
	10: money.MustParse("$2.40"),
}

// PaperTimeLimitFraction positions the MV2 response-time limits relative
// to the no-view workload time: the paper's limits (0.57 h for a 0.6 h
// 3-query baseline, 0.99 h for 1.0 h, 2.24 h for ≈2 h) sit just below the
// no-view time, forcing materialization while leaving the choice of views
// to the cost objective.
const PaperTimeLimitFraction = 0.95

// MV1Budget computes the budget for a workload size: the paper's limit
// plus this configuration's fixed (non-compute) baseline costs.
func (s *Setup) MV1Budget() (money.Money, error) {
	paper, ok := PaperBudgets[s.NumQueries]
	if !ok {
		return 0, fmt.Errorf("experiments: no paper budget for %d queries", s.NumQueries)
	}
	_, bill, err := s.Baseline()
	if err != nil {
		return 0, err
	}
	fixed := bill.Total().Sub(bill.Compute.Total())
	return paper.Add(fixed), nil
}

// MV2Limit computes the response-time limit for the setup.
func (s *Setup) MV2Limit() (time.Duration, error) {
	t, _, err := s.Baseline()
	if err != nil {
		return 0, err
	}
	return time.Duration(float64(t) * PaperTimeLimitFraction), nil
}

// WorkloadSizes are the paper's three workload sizes.
var WorkloadSizes = []int{3, 5, 10}
