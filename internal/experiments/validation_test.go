package experiments

import (
	"math"
	"testing"
)

func TestEngineValidationScanRatios(t *testing.T) {
	rows, err := RunEngineValidation(50_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		if r.MeasuredBase != 50_000 {
			t.Errorf("%s: base scan = %d, want 50000", r.Query, r.MeasuredBase)
		}
		if r.MeasuredView > r.MeasuredBase {
			t.Errorf("%s: views increased scanned rows (%d > %d)", r.Query, r.MeasuredView, r.MeasuredBase)
		}
		// The model's core assumption: measured and analytic scan ratios
		// agree. The analytic side uses Cardenas estimates, the measured
		// side real data with skew, so allow a generous ×3 band — what
		// matters is the order of magnitude of the reduction.
		m, a := r.MeasuredRatio(), r.AnalyticRatio()
		if m == 0 && a == 0 {
			continue
		}
		if m > 0 && a > 0 {
			ratio := m / a
			if ratio > 3 || ratio < 1.0/3 {
				t.Errorf("%s: measured ratio %.5f vs analytic %.5f (off ×%.1f)",
					r.Query, m, a, math.Max(ratio, 1/ratio))
			}
		}
	}
	// Queries answerable by small views must show a large measured
	// reduction (the whole point of materialization).
	first := rows[0] // profit per year and country
	if first.MeasuredRatio() > 0.05 {
		t.Errorf("year×country only reduced scans to %.3f of base", first.MeasuredRatio())
	}
}

func TestEngineValidationRouting(t *testing.T) {
	rows, err := RunEngineValidation(20_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Query == "profit per day and department" {
			// Base-grain query: no view can answer it.
			if r.Source != "facts" {
				t.Errorf("base-grain query routed to %s", r.Source)
			}
			if r.MeasuredView != r.MeasuredBase {
				t.Errorf("base-grain query scans differ: %d vs %d", r.MeasuredView, r.MeasuredBase)
			}
			continue
		}
		// A query is only expected to leave the base table when some
		// candidate actually answers it more cheaply (the HRU pre-selection
		// may drop big fine-grained views like day×region).
		if r.AnalyticView < r.AnalyticBase && r.Source == "facts" {
			t.Errorf("%s has an answering candidate but routed to the base table", r.Query)
		}
	}
}

func TestPigletValidationAllQueriesAgree(t *testing.T) {
	rows, err := RunPigletValidation(10_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		if !r.Agrees() {
			t.Errorf("%s: engine total %d != piglet total %d", r.Query, r.EngineTotal, r.PigletTotal)
		}
		if r.PigletJobs != 1 {
			t.Errorf("%s: %d MapReduce jobs, want 1", r.Query, r.PigletJobs)
		}
		if r.Groups == 0 {
			t.Errorf("%s: no output groups", r.Query)
		}
	}
	// All queries aggregate the same facts, so every grand total is equal.
	for _, r := range rows[1:] {
		if r.EngineTotal != rows[0].EngineTotal {
			t.Errorf("%s: total %d differs from %d", r.Query, r.EngineTotal, rows[0].EngineTotal)
		}
	}
}
