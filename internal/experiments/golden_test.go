package experiments

import (
	"math"
	"testing"
)

// Golden pins for the calibrated reproduction rates recorded in
// EXPERIMENTS.md. These are deterministic (analytical pipeline, fixed
// tariffs and budgets); any drift means the calibration — and the
// documented paper-vs-measured comparison — silently changed.
func TestGoldenRates(t *testing.T) {
	const tol = 0.002 // rates are pure ratios; allow float jitter only

	mv1, err := RunMV1()
	if err != nil {
		t.Fatal(err)
	}
	wantIP := []float64{0.2303, 0.2764, 0.3454}
	for i, r := range mv1 {
		if math.Abs(r.IPRate-wantIP[i]) > tol {
			t.Errorf("MV1 %dq IP rate = %.4f, golden %.4f (EXPERIMENTS.md §2 is stale)",
				r.Queries, r.IPRate, wantIP[i])
		}
	}

	mv2, err := RunMV2()
	if err != nil {
		t.Fatal(err)
	}
	wantIC := []float64{0.4799, 0.5211, 0.4352}
	for i, r := range mv2 {
		if math.Abs(r.ICRate-wantIC[i]) > tol {
			t.Errorf("MV2 %dq IC rate = %.4f, golden %.4f", r.Queries, r.ICRate, wantIC[i])
		}
	}

	mv3a, err := RunMV3(0.3)
	if err != nil {
		t.Fatal(err)
	}
	want3 := []float64{0.5570, 0.5863, 0.4815}
	for i, r := range mv3a {
		if math.Abs(r.Rate-want3[i]) > tol {
			t.Errorf("MV3 α=0.3 %dq rate = %.4f, golden %.4f", r.Queries, r.Rate, want3[i])
		}
	}

	mv3b, err := RunMV3(0.7)
	if err != nil {
		t.Fatal(err)
	}
	want7 := []float64{0.6398, 0.6523, 0.5268}
	for i, r := range mv3b {
		if math.Abs(r.Rate-want7[i]) > tol {
			t.Errorf("MV3 α=0.7 %dq rate = %.4f, golden %.4f", r.Queries, r.Rate, want7[i])
		}
	}
}
