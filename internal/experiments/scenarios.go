package experiments

import (
	"fmt"
	"time"

	"vmcloud/internal/costmodel"
	"vmcloud/internal/money"
	"vmcloud/internal/optimizer"
	"vmcloud/internal/report"
)

// MV1Row is one line of the Table 6 / Figure 5(a) reproduction.
type MV1Row struct {
	Queries     int
	Budget      money.Money
	TimeWithout time.Duration
	TimeWith    time.Duration
	BillWithout costmodel.Bill
	BillWith    costmodel.Bill
	// IPRate is Table 6's improved-performance rate:
	// (Twithout − Twith) / Twithout.
	IPRate   float64
	Views    []string
	Feasible bool
}

// RunMV1 reproduces scenario MV1 (budget limit) for the three workload
// sizes in the one-shot regime.
func RunMV1() ([]MV1Row, error) {
	var rows []MV1Row
	for _, n := range WorkloadSizes {
		s, err := NewSetup(n, OneShot())
		if err != nil {
			return nil, err
		}
		baseT, baseBill, err := s.Baseline()
		if err != nil {
			return nil, err
		}
		budget, err := s.MV1Budget()
		if err != nil {
			return nil, err
		}
		sel, err := s.Ev.SolveMV1(s.Cands, budget)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MV1Row{
			Queries:     n,
			Budget:      budget,
			TimeWithout: baseT,
			TimeWith:    sel.Time,
			BillWithout: baseBill,
			BillWith:    sel.Bill,
			IPRate:      rate(float64(baseT), float64(sel.Time)),
			Views:       s.ViewNames(sel.Points),
			Feasible:    sel.Feasible,
		})
	}
	return rows, nil
}

// MV2Row is one line of the Table 7 / Figure 5(b) reproduction.
type MV2Row struct {
	Queries     int
	Limit       time.Duration
	CostWithout money.Money
	CostWith    money.Money
	TimeWithout time.Duration
	TimeWith    time.Duration
	// ICRate is Table 7's improved-cost rate:
	// (Cwithout − Cwith) / Cwithout.
	ICRate   float64
	Views    []string
	Feasible bool
}

// RunMV2 reproduces scenario MV2 (response-time limit) for the three
// workload sizes in the recurring regime.
func RunMV2() ([]MV2Row, error) {
	var rows []MV2Row
	for _, n := range WorkloadSizes {
		s, err := NewSetup(n, Recurring())
		if err != nil {
			return nil, err
		}
		baseT, baseBill, err := s.Baseline()
		if err != nil {
			return nil, err
		}
		limit, err := s.MV2Limit()
		if err != nil {
			return nil, err
		}
		sel, err := s.Ev.SolveMV2(s.Cands, limit)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MV2Row{
			Queries:     n,
			Limit:       limit,
			CostWithout: baseBill.Total(),
			CostWith:    sel.Bill.Total(),
			TimeWithout: baseT,
			TimeWith:    sel.Time,
			ICRate:      rate(baseBill.Total().Dollars(), sel.Bill.Total().Dollars()),
			Views:       s.ViewNames(sel.Points),
			Feasible:    sel.Feasible,
		})
	}
	return rows, nil
}

// MV3Row is one line of the Table 8 / Figure 5(c,d) reproduction.
type MV3Row struct {
	Queries    int
	Alpha      float64
	ObjWithout float64
	ObjWith    float64
	// Rate is Table 8's improved-tradeoff rate.
	Rate  float64
	Views []string
}

// RunMV3 reproduces scenario MV3 (tradeoff) at the given α in the
// recurring regime. The paper reports α = 0.3 (Figure 5(c)) and α = 0.7
// in Table 8 (its Figure 5(d) caption says α = 0.65; run both).
func RunMV3(alpha float64) ([]MV3Row, error) {
	var rows []MV3Row
	for _, n := range WorkloadSizes {
		s, err := NewSetup(n, Recurring())
		if err != nil {
			return nil, err
		}
		baseT, baseBill, err := s.Baseline()
		if err != nil {
			return nil, err
		}
		sel, err := s.Ev.SolveMV3(s.Cands, alpha, optimizer.RawTradeoff)
		if err != nil {
			return nil, err
		}
		objWithout := optimizer.Objective(alpha, baseT, baseBill, optimizer.RawTradeoff, baseT, baseBill)
		objWith := optimizer.Objective(alpha, sel.Time, sel.Bill, optimizer.RawTradeoff, baseT, baseBill)
		rows = append(rows, MV3Row{
			Queries:    n,
			Alpha:      alpha,
			ObjWithout: objWithout,
			ObjWith:    objWith,
			Rate:       rate(objWithout, objWith),
			Views:      s.ViewNames(sel.Points),
		})
	}
	return rows, nil
}

func rate(without, with float64) float64 {
	if without <= 0 {
		return 0
	}
	return (without - with) / without
}

// Table6 renders the MV1 rows as the paper's Table 6 analogue.
func Table6(rows []MV1Row) *report.Table {
	t := report.NewTable("Table 6 — MV1: improved performance under the same budget",
		"queries", "budget", "T without", "T with", "IP rate", "views")
	for _, r := range rows {
		t.AddRow(r.Queries, r.Budget, fmtH(r.TimeWithout), fmtH(r.TimeWith),
			report.Percent(r.IPRate), len(r.Views))
	}
	return t
}

// Table7 renders the MV2 rows as the paper's Table 7 analogue.
func Table7(rows []MV2Row) *report.Table {
	t := report.NewTable("Table 7 — MV2: improved cost under the same time limit",
		"queries", "time limit", "C without", "C with", "IC rate", "views")
	for _, r := range rows {
		t.AddRow(r.Queries, fmtH(r.Limit), r.CostWithout, r.CostWith,
			report.Percent(r.ICRate), len(r.Views))
	}
	return t
}

// Table8 renders MV3 rows for two alphas as the paper's Table 8 analogue.
func Table8(a, b []MV3Row) (*report.Table, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("experiments: mismatched MV3 row sets (%d vs %d)", len(a), len(b))
	}
	var t *report.Table
	if len(a) > 0 {
		t = report.NewTable("Table 8 — MV3: improved tradeoff rates",
			"queries",
			fmt.Sprintf("rate (α=%.2g)", a[0].Alpha),
			fmt.Sprintf("rate (α=%.2g)", b[0].Alpha))
	} else {
		t = report.NewTable("Table 8 — MV3: improved tradeoff rates", "queries")
	}
	for i := range a {
		if a[i].Queries != b[i].Queries {
			return nil, fmt.Errorf("experiments: row %d mixes %d- and %d-query workloads", i, a[i].Queries, b[i].Queries)
		}
		t.AddRow(a[i].Queries, report.Percent(a[i].Rate), report.Percent(b[i].Rate))
	}
	return t, nil
}

// Figure5a renders the MV1 comparison as a bar chart (hours).
func Figure5a(rows []MV1Row) *report.BarChart {
	c := report.NewBarChart("Figure 5(a) — MV1 response time under budget (hours)", "h")
	for _, r := range rows {
		c.Add(fmt.Sprintf("%dq without", r.Queries), r.TimeWithout.Hours())
		c.Add(fmt.Sprintf("%dq with   ", r.Queries), r.TimeWith.Hours())
	}
	return c
}

// Figure5b renders the MV2 comparison as a bar chart (dollars).
func Figure5b(rows []MV2Row) *report.BarChart {
	c := report.NewBarChart("Figure 5(b) — MV2 total cost under time limit ($)", "$")
	for _, r := range rows {
		c.Add(fmt.Sprintf("%dq without", r.Queries), r.CostWithout.Dollars())
		c.Add(fmt.Sprintf("%dq with   ", r.Queries), r.CostWith.Dollars())
	}
	return c
}

// Figure5cd renders an MV3 comparison as a bar chart (objective value).
func Figure5cd(rows []MV3Row, label string) *report.BarChart {
	title := fmt.Sprintf("Figure 5(%s) — MV3 tradeoff objective", label)
	if len(rows) > 0 {
		title = fmt.Sprintf("Figure 5(%s) — MV3 tradeoff objective (α=%.2g)", label, rows[0].Alpha)
	}
	c := report.NewBarChart(title, "")
	for _, r := range rows {
		c.Add(fmt.Sprintf("%dq without", r.Queries), r.ObjWithout)
		c.Add(fmt.Sprintf("%dq with   ", r.Queries), r.ObjWith)
	}
	return c
}

func fmtH(d time.Duration) string { return fmt.Sprintf("%.3fh", d.Hours()) }
