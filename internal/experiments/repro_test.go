package experiments

import (
	"testing"

	"vmcloud/internal/core"
	"vmcloud/internal/lattice"
	"vmcloud/internal/schema"
	"vmcloud/internal/workload"
)

// TestLargeLatticeReproducibleViaAdvisor pins the reproducibility claim
// of RunLargeLattice's doc comment: at the default evaluation budget the
// experiment's search numbers come out byte-exact from the product path
// (core.New with Solver "search" + the same seed), because the advisor's
// search dispatch warm-starts from the knapsack exactly as the
// experiment does.
func TestLargeLatticeReproducibleViaAdvisor(t *testing.T) {
	r, err := RunLargeLattice(LargeLatticeConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sch, _ := schema.Synthetic(4, 4)
	l, _ := lattice.New(sch, 1_000_000_000)
	w, _ := workload.Random(l, 20, 8, 1)
	adv, err := core.New(core.Config{
		Schema: sch, FactRows: 1_000_000_000, Workload: w,
		CandidateBudget: 32, MaintenanceRuns: 6, UpdateRatio: 0.50,
		Solver: core.SolverSearch, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.AdviseBudget(r.Budget)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Selection.Time != r.SearchMV1.Time || rec.Selection.Bill.Total() != r.SearchMV1.Bill.Total() {
		t.Fatalf("advisor search %v/%v != experiment %v/%v",
			rec.Selection.Time, rec.Selection.Bill.Total(), r.SearchMV1.Time, r.SearchMV1.Bill.Total())
	}
	t.Logf("reproduced: %v / %v", rec.Selection.Time, rec.Selection.Bill.Total())
}
