package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current output")

// TestLargeLatticeGolden pins the rendered head-to-head table of the
// 256-cuboid experiment at seed 1 byte for byte. Both solvers' exact
// times, bills and view counts are embedded in the table, so this golden
// guards the whole pipeline — lattice estimates, HRU candidate
// generation, knapsack, and the seeded search — against any behavioral
// drift from the incremental evaluation engine.
func TestLargeLatticeGolden(t *testing.T) {
	r, err := RunLargeLattice(LargeLatticeConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := LargeLatticeTable(r).String()
	path := filepath.Join("testdata", "largelattice_seed1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/experiments -run LargeLatticeGolden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("256-cuboid seed-1 table drifted from pre-refactor golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
