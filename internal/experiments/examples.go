package experiments

import (
	"time"

	"vmcloud/internal/cluster"
	"vmcloud/internal/costmodel"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/simtime"
	"vmcloud/internal/units"
)

// ExampleCheck compares one of the paper's worked examples against the
// library's computation.
type ExampleCheck struct {
	ID          string
	Description string
	Computed    string
	Paper       string
	Match       bool
	Note        string
}

// runningExampleCluster is the running example's fleet: two small EC2
// instances with per-started-hour billing (Table 2).
func runningExampleCluster() (*cluster.Cluster, error) {
	return cluster.New(pricing.AWS2012(), "small", 2)
}

// RunWorkedExamples recomputes the paper's Examples 1–9 with the library
// and reports each against the paper's printed value.
func RunWorkedExamples() ([]ExampleCheck, error) {
	cl, err := runningExampleCluster()
	if err != nil {
		return nil, err
	}
	aws := pricing.AWS2012()
	var checks []ExampleCheck
	add := func(id, desc string, computed, paper money.Money, note string) {
		checks = append(checks, ExampleCheck{
			ID: id, Description: desc,
			Computed: computed.String(), Paper: paper.String(),
			Match: computed == paper, Note: note,
		})
	}

	// Example 1: 10 GB of result egress, first GB free.
	add("Example 1", "transfer cost of a 10 GB query result",
		costmodel.TransferCost(aws, 10*units.GB), money.FromDollars(1.08), "")

	// Example 2: 50 h workload on two small instances.
	add("Example 2", "computing cost of a 50 h workload on 2 small instances",
		cl.ComputeCost(50*time.Hour), money.FromDollars(12), "")

	// Example 3: 512 GB for 12 months, +2 TB at month 7.
	ex3, err := costmodel.StorageCost(aws, simtime.Timeline{
		Initial: 512 * units.GB,
		Horizon: 12,
		Events:  []simtime.Event{{At: 7, Delta: 2048 * units.GB}},
	})
	if err != nil {
		return nil, err
	}
	add("Example 3", "storage cost over two intervals",
		ex3, money.FromDollars(2131.76),
		"paper prints $2131.76 but its own expression evaluates to $2101.76; the library reproduces the formula")

	// Example 4: materializing V1 takes 1 h on two small instances.
	add("Example 4", "materialization cost of V1 (1 h)",
		cl.ComputeCost(1*time.Hour), money.FromDollars(0.24), "")

	// Example 5/6: processing the workload with views takes 40 h → $9.60.
	add("Example 6", "processing cost with views (40 h)",
		cl.ComputeCost(40*time.Hour), money.FromDollars(9.6), "")

	// Example 7/8: maintenance takes 5 h → $1.20.
	add("Example 8", "maintenance cost of V (5 h)",
		cl.ComputeCost(5*time.Hour), money.FromDollars(1.2), "")

	// Example 9: 550 GB stored for a year.
	ex9, err := costmodel.StorageCost(aws, simtime.Timeline{Initial: 550 * units.GB, Horizon: 12})
	if err != nil {
		return nil, err
	}
	add("Example 9", "storage cost of dataset + views for 12 months",
		ex9, money.FromDollars(924), "")

	return checks, nil
}

// IntroProvider is the introduction's fictitious tariff: storage $0.10 per
// GB-month flat, computing $0.24 per hour, free transfer.
func IntroProvider() pricing.Provider {
	return pricing.Provider{
		Name: "intro-example",
		Compute: pricing.ComputeTariff{
			Granularity: units.BillPerHour,
			Instances: map[string]pricing.InstanceType{
				"node": {Name: "node", PricePerHour: money.MustParse("$0.24"), RAM: units.GB, ECU: 1},
			},
		},
		Storage: pricing.StorageTariff{
			Table: pricing.Flat(pricing.Slab, money.MustParse("$0.10")),
		},
		Transfer: pricing.TransferTariff{
			IngressFree: true,
			Egress:      pricing.Flat(pricing.Graduated, 0),
		},
	}
}

// IntroExample reproduces the introduction's motivating example: a 500 GB
// dataset stored for a month, a 50 h workload ($62 total), against the
// with-views variant (40 h processing, +50 GB storage, $64.6 total:
// 20% faster, 4% more expensive).
type IntroExample struct {
	Without costmodel.Bill
	With    costmodel.Bill
	// SpeedupRate is the workload-time improvement (0.2 in the paper).
	SpeedupRate float64
	// CostIncreaseRate is the relative bill increase (≈0.042 in the paper).
	CostIncreaseRate float64
}

// RunIntroExample computes the introduction example.
func RunIntroExample() (IntroExample, error) {
	cl, err := cluster.New(IntroProvider(), "node", 1)
	if err != nil {
		return IntroExample{}, err
	}
	without := costmodel.Plan{
		Cluster:           cl,
		Months:            1,
		DatasetSize:       500 * units.GB,
		MonthlyProcessing: 50 * time.Hour,
	}
	withViews := without.WithViews(50*units.GB, 40*time.Hour, 0, 0)
	wb, err := without.Bill()
	if err != nil {
		return IntroExample{}, err
	}
	vb, err := withViews.Bill()
	if err != nil {
		return IntroExample{}, err
	}
	return IntroExample{
		Without:          wb,
		With:             vb,
		SpeedupRate:      rate(50, 40),
		CostIncreaseRate: -rate(wb.Total().Dollars(), vb.Total().Dollars()),
	}, nil
}
