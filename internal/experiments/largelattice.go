package experiments

import (
	"fmt"
	"time"

	"vmcloud/internal/core"
	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/optimizer"
	"vmcloud/internal/report"
	"vmcloud/internal/schema"
	"vmcloud/internal/search"
	"vmcloud/internal/workload"
)

// LargeLatticeConfig parameterizes the beyond-the-paper stress
// experiment: a synthetic multi-dimension schema whose cuboid lattice
// dwarfs the 16-node sales lattice, solved by both the linearized
// knapsack and the exact-evaluator metaheuristic search under identical
// constraints and a fixed evaluation budget. Zero values select the
// canonical 4-dimension × 4-level (256-cuboid) setting.
type LargeLatticeConfig struct {
	// Dims and Levels shape the synthetic schema (Levels counts ALL).
	Dims, Levels int
	// FactRows sizes the base cuboid.
	FactRows int64
	// Queries and MaxFreq shape the seeded-random workload.
	Queries, MaxFreq int
	// CandidateBudget caps the HRU candidate pre-selection.
	CandidateBudget int
	// Seed drives both the workload generator and the search solver.
	Seed int64
	// MaxEvals is the search solver's exact-evaluation budget.
	MaxEvals int
	// BudgetFactor sets the MV1 budget at BaselineBill × factor, so the
	// constraint binds without being unreachable.
	BudgetFactor float64
	// Alpha is the MV3 tradeoff weight.
	Alpha float64
}

func (c LargeLatticeConfig) withDefaults() LargeLatticeConfig {
	if c.Dims == 0 {
		c.Dims = 4
	}
	if c.Levels == 0 {
		c.Levels = 4
	}
	if c.FactRows == 0 {
		c.FactRows = 1_000_000_000
	}
	if c.Queries == 0 {
		c.Queries = 20
	}
	if c.MaxFreq == 0 {
		c.MaxFreq = 8
	}
	if c.CandidateBudget == 0 {
		c.CandidateBudget = 32
	}
	// Seed 0 is a valid, distinct seed on every other surface (CLI,
	// daemon, facade) — no default remapping, or "-large-seed 0" would
	// silently fail to reproduce a seed-0 advisor run.
	if c.MaxEvals == 0 {
		// Match the advisor's default so the printed numbers reproduce
		// exactly through the CLI/daemon/facade search path.
		c.MaxEvals = search.DefaultMaxEvals
	}
	if c.BudgetFactor == 0 {
		c.BudgetFactor = 1.01
	}
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	return c
}

// SolverOutcome is one solver's exactly re-priced selection.
type SolverOutcome struct {
	Strategy string
	Time     time.Duration
	Bill     costmodel.Bill
	Views    int
	Feasible bool
}

func outcome(sel optimizer.Selection) SolverOutcome {
	return SolverOutcome{
		Strategy: sel.Strategy,
		Time:     sel.Time,
		Bill:     sel.Bill,
		Views:    len(sel.Points),
		Feasible: sel.Feasible,
	}
}

// LargeLatticeResult is the head-to-head comparison on one generated
// lattice. Every number is exact (re-priced by the evaluator both
// solvers share), so the MV1 times and MV3 objectives are directly
// comparable.
type LargeLatticeResult struct {
	SchemaName   string
	Nodes        int
	Candidates   int
	BaselineTime time.Duration
	BaselineBill costmodel.Bill
	Budget       money.Money
	Alpha        float64
	MaxEvals     int

	KnapsackMV1, SearchMV1 SolverOutcome
	KnapsackMV3, SearchMV3 SolverOutcome
}

// MV3Objective evaluates the raw Formula 15 objective for an outcome.
func (r *LargeLatticeResult) MV3Objective(o SolverOutcome) float64 {
	return optimizer.Objective(r.Alpha, o.Time, o.Bill, optimizer.RawTradeoff, 0, costmodel.Bill{})
}

// RunLargeLattice generates the lattice and workload, pre-selects
// candidates, and solves MV1 and MV3 with both engines. The advisor
// stack is built through core.New with the same Config fields every
// advisor-facing surface uses, and the search runs exactly as the
// advisor's search dispatch does — knapsack warm start, default
// evaluation budget (unless overridden) — so at the default MaxEvals the
// printed numbers reproduce through the CLI/daemon/facade. The warm
// start means search's exact objective can never be worse than the
// knapsack's: the experiment measures how much exact-evaluator local
// moves recover from the linearization error.
func RunLargeLattice(cfg LargeLatticeConfig) (*LargeLatticeResult, error) {
	cfg = cfg.withDefaults()
	sch, err := schema.Synthetic(cfg.Dims, cfg.Levels)
	if err != nil {
		return nil, err
	}
	l, err := lattice.New(sch, cfg.FactRows)
	if err != nil {
		return nil, err
	}
	w, err := workload.Random(l, cfg.Queries, cfg.MaxFreq, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Heavyweight maintenance (cf. the one-shot regime): views carry a
	// real monthly cost, so the MV1 budget genuinely binds and which
	// subset to buy is a combinatorial question, not "take everything".
	adv, err := core.New(core.Config{
		Schema:          sch,
		FactRows:        cfg.FactRows,
		Workload:        w,
		CandidateBudget: cfg.CandidateBudget,
		MaintenanceRuns: 6,
		UpdateRatio:     0.50,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	ev, cands := adv.Ev, adv.Candidates
	baseT, baseBill, err := ev.Evaluate(nil)
	if err != nil {
		return nil, err
	}
	res := &LargeLatticeResult{
		SchemaName:   sch.Name,
		Nodes:        l.NumNodes(),
		Candidates:   len(cands),
		BaselineTime: baseT,
		BaselineBill: baseBill,
		Budget:       baseBill.Total().MulFloat(cfg.BudgetFactor),
		Alpha:        cfg.Alpha,
		MaxEvals:     cfg.MaxEvals,
	}

	knap1, err := ev.SolveMV1(cands, res.Budget)
	if err != nil {
		return nil, err
	}
	res.KnapsackMV1 = outcome(knap1)
	search1, err := search.SolveMV1(ev, cands, res.Budget, search.Options{
		Seed:     cfg.Seed,
		MaxEvals: cfg.MaxEvals,
		Starts:   [][]lattice.Point{knap1.Points},
	})
	if err != nil {
		return nil, err
	}
	res.SearchMV1 = outcome(search1)

	knap3, err := ev.SolveMV3(cands, cfg.Alpha, optimizer.RawTradeoff)
	if err != nil {
		return nil, err
	}
	res.KnapsackMV3 = outcome(knap3)
	search3, err := search.Solve(ev, cands,
		search.TradeoffObjective(cfg.Alpha, optimizer.RawTradeoff, 0, costmodel.Bill{}),
		search.Options{
			Seed:     cfg.Seed,
			MaxEvals: cfg.MaxEvals,
			Starts:   [][]lattice.Point{knap3.Points},
		})
	if err != nil {
		return nil, err
	}
	res.SearchMV3 = outcome(search3)
	return res, nil
}

// LargeLatticeTable renders the head-to-head comparison.
func LargeLatticeTable(r *LargeLatticeResult) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("%s: %d cuboids, %d candidates, budget %v, α=%.2g, eval budget %d",
			r.SchemaName, r.Nodes, r.Candidates, r.Budget, r.Alpha, r.MaxEvals),
		"scenario", "solver", "workload time", "bill", "views", "feasible")
	add := func(scenario string, o SolverOutcome) {
		t.AddRow(scenario, o.Strategy, fmtH(o.Time), o.Bill.Total(), o.Views, o.Feasible)
	}
	add("baseline", SolverOutcome{Strategy: "none", Time: r.BaselineTime, Bill: r.BaselineBill, Feasible: true})
	add("mv1", r.KnapsackMV1)
	add("mv1", r.SearchMV1)
	add("mv3", r.KnapsackMV3)
	add("mv3", r.SearchMV3)
	return t
}
