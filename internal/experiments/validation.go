package experiments

import (
	"fmt"

	"vmcloud/internal/datagen"
	"vmcloud/internal/engine"
	"vmcloud/internal/mapreduce"
	"vmcloud/internal/piglet"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// ValidationRow compares, for one workload query, the measured engine scan
// against the analytical model's prediction: the cost models assume query
// time is proportional to the scanned source's size, so the measured
// rows-scanned ratio between the with-views and no-views runs should track
// the lattice's row-count ratio.
type ValidationRow struct {
	Query string
	// Source is the table the executor routed the query to with views on.
	Source string
	// MeasuredBase/MeasuredView are rows actually scanned by the engine.
	MeasuredBase int64
	MeasuredView int64
	// AnalyticBase/AnalyticView are the lattice estimates at local scale.
	AnalyticBase int64
	AnalyticView int64
}

// MeasuredRatio is the observed scan reduction (view/base).
func (r ValidationRow) MeasuredRatio() float64 {
	if r.MeasuredBase == 0 {
		return 0
	}
	return float64(r.MeasuredView) / float64(r.MeasuredBase)
}

// AnalyticRatio is the predicted scan reduction.
func (r ValidationRow) AnalyticRatio() float64 {
	if r.AnalyticBase == 0 {
		return 0
	}
	return float64(r.AnalyticView) / float64(r.AnalyticBase)
}

// RunEngineValidation executes the n-query sales workload for real on a
// generated dataset of sampleRows facts — once against the base table,
// once with the HRU candidate views materialized — and reports measured
// versus analytical scan volumes per query. This is the "engine validates
// the plan" leg of DESIGN.md §4.
func RunEngineValidation(sampleRows, nQueries int) ([]ValidationRow, error) {
	ds, err := datagen.GenerateSales(datagen.Config{Rows: sampleRows, Seed: 17})
	if err != nil {
		return nil, err
	}
	ex, err := engine.NewExecutor(ds)
	if err != nil {
		return nil, err
	}
	w, err := workload.Sales(ex.Lat, nQueries)
	if err != nil {
		return nil, err
	}
	cands, err := views.GenerateCandidates(ex.Lat, w, CandidateBudget)
	if err != nil {
		return nil, err
	}
	for _, c := range cands {
		if _, err := ex.Materialize(c.Point); err != nil {
			return nil, err
		}
	}
	baseNode, err := ex.Lat.Node(ex.Lat.Base())
	if err != nil {
		return nil, err
	}
	var rows []ValidationRow
	for _, q := range w.Queries {
		src := ex.SourceFor(q.Point)
		withViews, err := ex.Answer(q.Point, engine.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s with views: %w", q.Name, err)
		}
		// Re-answer from the base table for the no-view measurement.
		direct, err := engine.Aggregate(ds, ds.Facts, q.Point, engine.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s from base: %w", q.Name, err)
		}
		_, analyticView := ex.Lat.CheapestAnswering(views.Points(cands), q.Point)
		rows = append(rows, ValidationRow{
			Query:        q.Name,
			Source:       src.Name,
			MeasuredBase: direct.Stats.RowsScanned,
			MeasuredView: withViews.Stats.RowsScanned,
			AnalyticBase: baseNode.Rows,
			AnalyticView: analyticView.Rows,
		})
	}
	return rows, nil
}

// PigletValidationRow compares one workload query computed by the engine
// against the same query expressed as a Piglet script and executed on the
// MapReduce runtime — the paper's Pig-on-Hadoop execution path.
type PigletValidationRow struct {
	Query       string
	EngineTotal int64
	PigletTotal int64
	PigletJobs  int
	Groups      int
}

// Agrees reports whether both paths produced the same grand total.
func (r PigletValidationRow) Agrees() bool { return r.EngineTotal == r.PigletTotal }

// RunPigletValidation cross-checks every query of the n-query workload:
// the columnar engine's result total must equal the Piglet/MapReduce
// result total on the same generated data.
func RunPigletValidation(sampleRows, nQueries int) ([]PigletValidationRow, error) {
	ds, err := datagen.GenerateSales(datagen.Config{Rows: sampleRows, Seed: 23})
	if err != nil {
		return nil, err
	}
	ex, err := engine.NewExecutor(ds)
	if err != nil {
		return nil, err
	}
	rel, err := piglet.DatasetRelation(ds)
	if err != nil {
		return nil, err
	}
	rn := &piglet.Runner{
		Catalog: piglet.Catalog{"sales": rel},
		MR:      mapreduce.Config{Mappers: 4, Reducers: 4},
	}
	w, err := workload.Sales(ex.Lat, nQueries)
	if err != nil {
		return nil, err
	}
	var out []PigletValidationRow
	for _, q := range w.Queries {
		eng, err := ex.Answer(q.Point, engine.Options{})
		if err != nil {
			return nil, err
		}
		var engTotal int64
		for _, v := range eng.Table.Measures[0] {
			engTotal += v
		}
		script, err := q.PigScript(ex.Lat)
		if err != nil {
			return nil, err
		}
		res, err := rn.RunScript(script)
		if err != nil {
			return nil, fmt.Errorf("experiments: piglet %s: %w", q.Name, err)
		}
		pig, ok := res.Output("result")
		if !ok {
			return nil, fmt.Errorf("experiments: piglet %s produced no result", q.Name)
		}
		totalCol, err := pig.ColIndex("total")
		if err != nil {
			return nil, err
		}
		var pigTotal int64
		for _, row := range pig.Rows {
			pigTotal += row[totalCol].Int
		}
		out = append(out, PigletValidationRow{
			Query:       q.Name,
			EngineTotal: engTotal,
			PigletTotal: pigTotal,
			PigletJobs:  res.Jobs,
			Groups:      len(pig.Rows),
		})
	}
	return out, nil
}
