package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"vmcloud/internal/lattice"
)

// WriteFactsCSV exports the base fact table as CSV with one header row.
// Columns are the finest-level key codes per dimension followed by the
// measures — the raw interchange format for external tooling (the
// denormalized, human-readable form lives in piglet.DatasetRelation).
func (ds *Dataset) WriteFactsCSV(w io.Writer) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(ds.Schema.Dimensions)+len(ds.Schema.Measures))
	for _, d := range ds.Schema.Dimensions {
		header = append(header, d.Finest().Name)
	}
	for _, m := range ds.Schema.Measures {
		header = append(header, m.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for r := 0; r < ds.Facts.Rows(); r++ {
		i := 0
		for d := range ds.Schema.Dimensions {
			rec[i] = strconv.FormatInt(int64(ds.Facts.Keys[d][r]), 10)
			i++
		}
		for m := range ds.Schema.Measures {
			rec[i] = strconv.FormatInt(ds.Facts.Measures[m][r], 10)
			i++
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadFactsCSV replaces the dataset's fact table with rows parsed from CSV
// written by WriteFactsCSV. The header must match the schema; key codes
// are validated against level cardinalities.
func (ds *Dataset) ReadFactsCSV(r io.Reader) error {
	if ds.Schema == nil {
		return fmt.Errorf("storage: dataset has no schema")
	}
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("storage: read CSV header: %w", err)
	}
	want := len(ds.Schema.Dimensions) + len(ds.Schema.Measures)
	if len(header) != want {
		return fmt.Errorf("storage: CSV has %d columns, schema needs %d", len(header), want)
	}
	for d, dim := range ds.Schema.Dimensions {
		if header[d] != dim.Finest().Name {
			return fmt.Errorf("storage: CSV column %d is %q, want %q", d, header[d], dim.Finest().Name)
		}
	}
	for m, meas := range ds.Schema.Measures {
		idx := len(ds.Schema.Dimensions) + m
		if header[idx] != meas.Name {
			return fmt.Errorf("storage: CSV column %d is %q, want %q", idx, header[idx], meas.Name)
		}
	}
	facts := NewTable("facts", make(lattice.Point, len(ds.Schema.Dimensions)), len(ds.Schema.Measures), 1024)
	keys := make([]int32, len(ds.Schema.Dimensions))
	vals := make([]int64, len(ds.Schema.Measures))
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return fmt.Errorf("storage: CSV line %d: %w", line, err)
		}
		for d, dim := range ds.Schema.Dimensions {
			v, err := strconv.ParseInt(rec[d], 10, 32)
			if err != nil {
				return fmt.Errorf("storage: CSV line %d key %s: %w", line, dim.Name, err)
			}
			if v < 0 || v >= int64(dim.Finest().Cardinality) {
				return fmt.Errorf("storage: CSV line %d: %s code %d out of range [0,%d)",
					line, dim.Finest().Name, v, dim.Finest().Cardinality)
			}
			keys[d] = int32(v)
		}
		for m := range ds.Schema.Measures {
			v, err := strconv.ParseInt(rec[len(ds.Schema.Dimensions)+m], 10, 64)
			if err != nil {
				return fmt.Errorf("storage: CSV line %d measure %s: %w", line, ds.Schema.Measures[m].Name, err)
			}
			vals[m] = v
		}
		if err := facts.Append(keys, vals); err != nil {
			return err
		}
	}
	ds.Facts = facts
	return ds.Validate()
}
