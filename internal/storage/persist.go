package storage

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"vmcloud/internal/lattice"
	"vmcloud/internal/schema"
	"vmcloud/internal/units"
)

// persistedTable mirrors Table with the unexported row count made explicit.
type persistedTable struct {
	Name     string
	Point    lattice.Point
	Keys     [][]int32
	Measures [][]int64
	Rows     int
}

// persistedDataset is the on-disk form of a Dataset (the schema is carried
// along so a file is self-describing).
type persistedDataset struct {
	Facts  persistedTable
	Maps   map[string][]int32
	Labels map[string][]string
	Schema persistedSchema
}

type persistedSchema struct {
	Name       string
	Dimensions []persistedDimension
	Measures   []persistedMeasure
	RowBytes   int64
}

type persistedDimension struct {
	Name   string
	Levels []persistedLevel
}

type persistedLevel struct {
	Name        string
	Cardinality int
}

type persistedMeasure struct {
	Name string
	Kind int
}

// Encode serializes the dataset with encoding/gob.
func (ds *Dataset) Encode(w io.Writer) error {
	if err := ds.Validate(); err != nil {
		return fmt.Errorf("storage: refusing to persist invalid dataset: %w", err)
	}
	pd := persistedDataset{
		Facts: persistedTable{
			Name:     ds.Facts.Name,
			Point:    ds.Facts.Point,
			Keys:     ds.Facts.Keys,
			Measures: ds.Facts.Measures,
			Rows:     ds.Facts.rows,
		},
		Maps:   ds.Maps,
		Labels: ds.Labels,
		Schema: persistedSchema{
			Name:     ds.Schema.Name,
			RowBytes: int64(ds.Schema.RowBytes),
		},
	}
	for _, d := range ds.Schema.Dimensions {
		pdim := persistedDimension{Name: d.Name}
		for _, l := range d.Levels {
			pdim.Levels = append(pdim.Levels, persistedLevel{Name: l.Name, Cardinality: l.Cardinality})
		}
		pd.Schema.Dimensions = append(pd.Schema.Dimensions, pdim)
	}
	for _, m := range ds.Schema.Measures {
		pd.Schema.Measures = append(pd.Schema.Measures, persistedMeasure{Name: m.Name, Kind: int(m.Kind)})
	}
	return gob.NewEncoder(w).Encode(pd)
}

// ReadDataset deserializes a dataset written by Encode and validates it.
func ReadDataset(r io.Reader) (*Dataset, error) {
	var pd persistedDataset
	if err := gob.NewDecoder(r).Decode(&pd); err != nil {
		return nil, fmt.Errorf("storage: decode dataset: %w", err)
	}
	ds := &Dataset{
		Facts: &Table{
			Name:     pd.Facts.Name,
			Point:    pd.Facts.Point,
			Keys:     pd.Facts.Keys,
			Measures: pd.Facts.Measures,
			rows:     pd.Facts.Rows,
		},
		Maps:   pd.Maps,
		Labels: pd.Labels,
	}
	ds.Schema = pd.Schema.toSchema()
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("storage: decoded dataset invalid: %w", err)
	}
	return ds, nil
}

// SaveFile writes the dataset to path.
func (ds *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := ds.Encode(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDataset(bufio.NewReader(f))
}

func (ps persistedSchema) toSchema() *schema.Schema {
	s := &schema.Schema{
		Name:     ps.Name,
		RowBytes: units.DataSize(ps.RowBytes),
	}
	for _, d := range ps.Dimensions {
		dim := schema.Dimension{Name: d.Name}
		for _, l := range d.Levels {
			dim.Levels = append(dim.Levels, schema.Level{Name: l.Name, Cardinality: l.Cardinality})
		}
		s.Dimensions = append(s.Dimensions, dim)
	}
	for _, m := range ps.Measures {
		s.Measures = append(s.Measures, schema.Measure{Name: m.Name, Kind: schema.MeasureKind(m.Kind)})
	}
	return s
}
