// Package storage provides the in-memory columnar tables the execution
// engine and the materialized-view machinery operate on, plus binary
// persistence.
//
// A Table holds fact or view data at a fixed granularity: one dictionary-
// encoded key column per schema dimension (at some hierarchy level) and one
// int64 column per measure. Hierarchy rollup mappings (e.g. day→month) live
// on the enclosing Dataset so that any table can be re-aggregated to any
// coarser granularity.
package storage

import (
	"fmt"
	"sort"

	"vmcloud/internal/lattice"
	"vmcloud/internal/schema"
	"vmcloud/internal/units"
)

// Table is a columnar relation at a fixed lattice point.
type Table struct {
	// Name identifies the table ("facts", "mv:year×country", ...).
	Name string
	// Point records each dimension's level (index into the schema
	// dimension's level list). A key column at the ALL level is nil.
	Point lattice.Point
	// Keys holds one dictionary-encoded key column per dimension;
	// Keys[d][r] is the code of row r at dimension d's level Point[d].
	// Keys[d] is nil when Point[d] is the ALL level.
	Keys [][]int32
	// Measures holds the measure columns by schema order.
	Measures [][]int64
	rows     int
}

// NewTable allocates an empty table at the given point with the given
// number of dimensions and measures, pre-sizing for capacity rows.
func NewTable(name string, point lattice.Point, numMeasures, capacity int) *Table {
	t := &Table{
		Name:     name,
		Point:    point.Clone(),
		Keys:     make([][]int32, len(point)),
		Measures: make([][]int64, numMeasures),
	}
	for d := range t.Keys {
		t.Keys[d] = make([]int32, 0, capacity)
	}
	for m := range t.Measures {
		t.Measures[m] = make([]int64, 0, capacity)
	}
	return t
}

// Rows returns the number of rows.
func (t *Table) Rows() int { return t.rows }

// Append adds one row. keys must have one code per dimension (values at ALL
// levels are ignored and stored as 0 is unnecessary since the column stays
// aligned); measures must match the measure count.
func (t *Table) Append(keys []int32, measures []int64) error {
	if len(keys) != len(t.Keys) {
		return fmt.Errorf("storage: row has %d keys, table %s has %d dimensions", len(keys), t.Name, len(t.Keys))
	}
	if len(measures) != len(t.Measures) {
		return fmt.Errorf("storage: row has %d measures, table %s has %d", len(measures), t.Name, len(t.Measures))
	}
	for d := range t.Keys {
		t.Keys[d] = append(t.Keys[d], keys[d])
	}
	for m := range t.Measures {
		t.Measures[m] = append(t.Measures[m], measures[m])
	}
	t.rows++
	return nil
}

// Validate checks column alignment.
func (t *Table) Validate() error {
	for d, col := range t.Keys {
		if col != nil && len(col) != t.rows {
			return fmt.Errorf("storage: table %s key column %d has %d entries, want %d", t.Name, d, len(col), t.rows)
		}
	}
	for m, col := range t.Measures {
		if len(col) != t.rows {
			return fmt.Errorf("storage: table %s measure column %d has %d entries, want %d", t.Name, m, len(col), t.rows)
		}
	}
	return nil
}

// SortByKeys reorders rows lexicographically by key columns (nil columns —
// ALL levels — compare equal). Aggregated tables use this to keep a
// deterministic row order after merges.
func (t *Table) SortByKeys() {
	idx := make([]int, t.rows)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for _, col := range t.Keys {
			if col == nil {
				continue
			}
			if col[idx[a]] != col[idx[b]] {
				return col[idx[a]] < col[idx[b]]
			}
		}
		return false
	})
	for d, col := range t.Keys {
		if col == nil {
			continue
		}
		out := make([]int32, t.rows)
		for i, j := range idx {
			out[i] = col[j]
		}
		t.Keys[d] = out
	}
	for m, col := range t.Measures {
		out := make([]int64, t.rows)
		for i, j := range idx {
			out[i] = col[j]
		}
		t.Measures[m] = out
	}
}

// Dataset bundles a schema, its base fact table, the hierarchy rollup maps
// and optional display labels. It is the unit of persistence.
type Dataset struct {
	Schema *schema.Schema
	Facts  *Table
	// Maps holds child→parent index arrays keyed by schema.MapName, e.g.
	// Maps["day->month"][dayCode] = monthCode.
	Maps map[string][]int32
	// Labels holds display names per level name, e.g.
	// Labels["country"][2] = "Italy". Optional.
	Labels map[string][]string
}

// Validate checks schema consistency, fact-table alignment and that every
// adjacent level pair of every dimension has a rollup map of the right size.
func (ds *Dataset) Validate() error {
	if ds.Schema == nil {
		return fmt.Errorf("storage: dataset has no schema")
	}
	if err := ds.Schema.Validate(); err != nil {
		return err
	}
	if ds.Facts == nil {
		return fmt.Errorf("storage: dataset has no fact table")
	}
	if err := ds.Facts.Validate(); err != nil {
		return err
	}
	if len(ds.Facts.Keys) != len(ds.Schema.Dimensions) {
		return fmt.Errorf("storage: fact table has %d dims, schema has %d", len(ds.Facts.Keys), len(ds.Schema.Dimensions))
	}
	for _, dim := range ds.Schema.Dimensions {
		// Maps required between all adjacent non-ALL levels; the map into
		// ALL is implicit (constant 0).
		for i := 0; i+2 < len(dim.Levels); i++ {
			from, to := dim.Levels[i], dim.Levels[i+1]
			name := schema.MapName(from.Name, to.Name)
			m, ok := ds.Maps[name]
			if !ok {
				return fmt.Errorf("storage: dataset missing rollup map %q", name)
			}
			if len(m) != from.Cardinality {
				return fmt.Errorf("storage: rollup map %q has %d entries, want %d", name, len(m), from.Cardinality)
			}
			for code, parent := range m {
				if parent < 0 || int(parent) >= to.Cardinality {
					return fmt.Errorf("storage: rollup map %q entry %d → %d out of range [0,%d)", name, code, parent, to.Cardinality)
				}
			}
		}
	}
	return nil
}

// MapChain returns the sequence of rollup arrays lifting dimension dim from
// level `from` to coarser level `to`. An empty chain means either from == to
// or to is the ALL level (whose key is the constant 0, needing no lookup).
func (ds *Dataset) MapChain(dim int, from, to int) ([][]int32, error) {
	if dim < 0 || dim >= len(ds.Schema.Dimensions) {
		return nil, fmt.Errorf("storage: dimension %d out of range", dim)
	}
	d := ds.Schema.Dimensions[dim]
	if from > to {
		return nil, fmt.Errorf("storage: cannot map %s level %d down to %d", d.Name, from, to)
	}
	if from < 0 || to >= len(d.Levels) {
		return nil, fmt.Errorf("storage: levels %d..%d out of range for %s", from, to, d.Name)
	}
	if to == len(d.Levels)-1 {
		return nil, nil // ALL: constant key, no lookups
	}
	var chain [][]int32
	for l := from; l < to; l++ {
		name := schema.MapName(d.Levels[l].Name, d.Levels[l+1].Name)
		m, ok := ds.Maps[name]
		if !ok {
			return nil, fmt.Errorf("storage: missing rollup map %q", name)
		}
		chain = append(chain, m)
	}
	return chain, nil
}

// SizeOnDisk estimates the serialized size of a table with the dataset's
// schema row width: rows × RowBytes. The paper's models consume sizes at
// this grain (GB of stored data), not exact byte layouts.
func (ds *Dataset) SizeOnDisk(t *Table) units.DataSize {
	return ds.Schema.RowBytes.MulInt(int64(t.Rows()))
}

// FactSize returns the estimated stored size of the base fact table.
func (ds *Dataset) FactSize() units.DataSize { return ds.SizeOnDisk(ds.Facts) }
