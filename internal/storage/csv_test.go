package storage

import (
	"bytes"
	"strings"
	"testing"
)

func TestFactsCSVRoundTrip(t *testing.T) {
	ds := tinyDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteFactsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "day,city,profit\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "0,0,10\n") || !strings.Contains(out, "5,2,60\n") {
		t.Errorf("rows missing:\n%s", out)
	}

	restored := tinyDataset(t)
	restored.Facts = nil
	restored.Facts = NewTable("facts", ds.Facts.Point, 1, 1)
	if err := restored.ReadFactsCSV(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	if restored.Facts.Rows() != ds.Facts.Rows() {
		t.Fatalf("rows = %d, want %d", restored.Facts.Rows(), ds.Facts.Rows())
	}
	for r := 0; r < ds.Facts.Rows(); r++ {
		if restored.Facts.Keys[0][r] != ds.Facts.Keys[0][r] ||
			restored.Facts.Keys[1][r] != ds.Facts.Keys[1][r] ||
			restored.Facts.Measures[0][r] != ds.Facts.Measures[0][r] {
			t.Fatalf("row %d differs", r)
		}
	}
}

func TestWriteFactsCSVRejectsInvalid(t *testing.T) {
	ds := tinyDataset(t)
	ds.Maps = nil
	var buf bytes.Buffer
	if err := ds.WriteFactsCSV(&buf); err == nil {
		t.Error("invalid dataset exported")
	}
}

func TestReadFactsCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"wrong column count", "day,city\n0,0\n"},
		{"wrong key name", "date,city,profit\n0,0,1\n"},
		{"wrong measure name", "day,city,revenue\n0,0,1\n"},
		{"non-numeric key", "day,city,profit\nx,0,1\n"},
		{"non-numeric measure", "day,city,profit\n0,0,x\n"},
		{"key out of range", "day,city,profit\n99,0,1\n"},
		{"negative key", "day,city,profit\n-1,0,1\n"},
		{"ragged row", "day,city,profit\n0,0\n"},
	}
	for _, c := range cases {
		ds := tinyDataset(t)
		if err := ds.ReadFactsCSV(strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	var nilSchema Dataset
	if err := nilSchema.ReadFactsCSV(strings.NewReader("x\n")); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestReadFactsCSVEmptyBody(t *testing.T) {
	ds := tinyDataset(t)
	if err := ds.ReadFactsCSV(strings.NewReader("day,city,profit\n")); err != nil {
		t.Fatal(err)
	}
	if ds.Facts.Rows() != 0 {
		t.Errorf("rows = %d, want 0", ds.Facts.Rows())
	}
}
