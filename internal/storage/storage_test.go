package storage

import (
	"bytes"
	"path/filepath"
	"testing"

	"vmcloud/internal/lattice"
	"vmcloud/internal/schema"
	"vmcloud/internal/units"
)

// tinyDataset builds a 2-dimension dataset with a handful of rows by hand.
func tinyDataset(t *testing.T) *Dataset {
	t.Helper()
	s := &schema.Schema{
		Name: "tiny",
		Dimensions: []schema.Dimension{
			schema.NewDimension("time",
				schema.Level{Name: "day", Cardinality: 6},
				schema.Level{Name: "month", Cardinality: 3},
			),
			schema.NewDimension("geo",
				schema.Level{Name: "city", Cardinality: 4},
				schema.Level{Name: "country", Cardinality: 2},
			),
		},
		Measures: []schema.Measure{{Name: "profit", Kind: schema.Sum}},
		RowBytes: 32,
	}
	facts := NewTable("facts", lattice.Point{0, 0}, 1, 8)
	rows := []struct {
		day, city int32
		profit    int64
	}{
		{0, 0, 10}, {1, 1, 20}, {2, 2, 30}, {3, 3, 40}, {4, 0, 50}, {5, 2, 60},
	}
	for _, r := range rows {
		if err := facts.Append([]int32{r.day, r.city}, []int64{r.profit}); err != nil {
			t.Fatal(err)
		}
	}
	ds := &Dataset{
		Schema: s,
		Facts:  facts,
		Maps: map[string][]int32{
			schema.MapName("day", "month"):    {0, 0, 1, 1, 2, 2},
			schema.MapName("city", "country"): {0, 0, 1, 1},
		},
		Labels: map[string][]string{"country": {"France", "Italy"}},
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAppendAndValidate(t *testing.T) {
	ds := tinyDataset(t)
	if ds.Facts.Rows() != 6 {
		t.Errorf("rows = %d, want 6", ds.Facts.Rows())
	}
	if err := ds.Facts.Append([]int32{0}, []int64{1}); err == nil {
		t.Error("wrong key arity accepted")
	}
	if err := ds.Facts.Append([]int32{0, 0}, nil); err == nil {
		t.Error("wrong measure arity accepted")
	}
}

func TestTableValidateDetectsMisalignment(t *testing.T) {
	ds := tinyDataset(t)
	ds.Facts.Keys[0] = ds.Facts.Keys[0][:3]
	if err := ds.Facts.Validate(); err == nil {
		t.Error("misaligned key column accepted")
	}
	ds = tinyDataset(t)
	ds.Facts.Measures[0] = append(ds.Facts.Measures[0], 1)
	if err := ds.Facts.Validate(); err == nil {
		t.Error("misaligned measure column accepted")
	}
}

func TestDatasetValidateRejects(t *testing.T) {
	ds := tinyDataset(t)
	ds.Schema = nil
	if err := ds.Validate(); err == nil {
		t.Error("nil schema accepted")
	}

	ds = tinyDataset(t)
	ds.Facts = nil
	if err := ds.Validate(); err == nil {
		t.Error("nil facts accepted")
	}

	ds = tinyDataset(t)
	delete(ds.Maps, schema.MapName("day", "month"))
	if err := ds.Validate(); err == nil {
		t.Error("missing rollup map accepted")
	}

	ds = tinyDataset(t)
	ds.Maps[schema.MapName("day", "month")] = []int32{0, 0, 1}
	if err := ds.Validate(); err == nil {
		t.Error("short rollup map accepted")
	}

	ds = tinyDataset(t)
	ds.Maps[schema.MapName("day", "month")] = []int32{0, 0, 1, 1, 2, 9}
	if err := ds.Validate(); err == nil {
		t.Error("out-of-range rollup entry accepted")
	}
}

func TestMapChain(t *testing.T) {
	ds := tinyDataset(t)
	// day → month: one hop.
	chain, err := ds.MapChain(0, 0, 1)
	if err != nil || len(chain) != 1 {
		t.Fatalf("chain day→month = %d maps, err %v; want 1", len(chain), err)
	}
	// day → day: empty.
	chain, err = ds.MapChain(0, 0, 0)
	if err != nil || len(chain) != 0 {
		t.Errorf("identity chain = %d maps, err %v", len(chain), err)
	}
	// day → ALL: empty (constant key).
	chain, err = ds.MapChain(0, 0, 2)
	if err != nil || chain != nil {
		t.Errorf("ALL chain = %v, err %v; want nil", chain, err)
	}
	// Downward mapping is an error.
	if _, err := ds.MapChain(0, 1, 0); err == nil {
		t.Error("downward chain accepted")
	}
	if _, err := ds.MapChain(5, 0, 1); err == nil {
		t.Error("bad dimension accepted")
	}
	if _, err := ds.MapChain(0, 0, 9); err == nil {
		t.Error("out-of-range target level accepted")
	}
}

func TestSizeOnDisk(t *testing.T) {
	ds := tinyDataset(t)
	if got := ds.FactSize(); got != 6*32*units.Byte {
		t.Errorf("FactSize = %v, want 192 B", got)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	ds := tinyDataset(t)
	var buf bytes.Buffer
	if err := ds.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Facts.Rows() != ds.Facts.Rows() {
		t.Errorf("rows = %d, want %d", got.Facts.Rows(), ds.Facts.Rows())
	}
	for r := 0; r < ds.Facts.Rows(); r++ {
		if got.Facts.Keys[0][r] != ds.Facts.Keys[0][r] ||
			got.Facts.Keys[1][r] != ds.Facts.Keys[1][r] ||
			got.Facts.Measures[0][r] != ds.Facts.Measures[0][r] {
			t.Fatalf("row %d differs after round trip", r)
		}
	}
	if got.Schema.Name != "tiny" || got.Schema.RowBytes != 32 {
		t.Errorf("schema mangled: %+v", got.Schema)
	}
	if got.Labels["country"][1] != "Italy" {
		t.Errorf("labels mangled: %v", got.Labels)
	}
	if len(got.Maps) != 2 {
		t.Errorf("maps mangled: %v", got.Maps)
	}
}

func TestPersistRejectsInvalid(t *testing.T) {
	ds := tinyDataset(t)
	delete(ds.Maps, schema.MapName("day", "month"))
	var buf bytes.Buffer
	if err := ds.Encode(&buf); err == nil {
		t.Error("invalid dataset persisted")
	}
}

func TestReadDatasetRejectsGarbage(t *testing.T) {
	if _, err := ReadDataset(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Error("garbage decoded")
	}
}

func TestSaveLoadFile(t *testing.T) {
	ds := tinyDataset(t)
	path := filepath.Join(t.TempDir(), "tiny.ds")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Facts.Rows() != 6 {
		t.Errorf("rows after file round trip = %d", got.Facts.Rows())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.ds")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestNewTableShape(t *testing.T) {
	tb := NewTable("x", lattice.Point{1, 2}, 2, 4)
	if len(tb.Keys) != 2 || len(tb.Measures) != 2 || tb.Rows() != 0 {
		t.Errorf("NewTable shape wrong: %+v", tb)
	}
	if !tb.Point.Equal(lattice.Point{1, 2}) {
		t.Errorf("point = %v", tb.Point)
	}
}
