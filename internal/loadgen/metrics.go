package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"

	"vmcloud/internal/obs"
)

// This file is the server-side half of the harness's latency story: the
// client-side percentiles in hist.go measure what callers experience,
// while the scrape below reads the server's own
// mvcloud_http_request_duration_seconds histograms from /metrics. The
// two views bracket each other — the server-side p95 bucket must
// contain (or sit just below) the client-side nearest-rank p95 on an
// in-process run, which TestServerClientP95Bracket pins.

// metricsSource is the in-process scrape capability: server.Server
// implements it (the exact bytes GET /metrics serves).
type metricsSource interface {
	Metrics(w io.Writer) error
}

// ServerHist is one endpoint's server-side latency histogram, scraped
// from /metrics after a run and summed across serving outcomes.
type ServerHist struct {
	// BoundsMS are the inclusive bucket upper bounds in milliseconds,
	// ascending, excluding the +Inf bucket.
	BoundsMS []float64 `json:"bounds_ms"`
	// CumCounts are cumulative observation counts per bucket; the last
	// entry is the +Inf bucket and equals Count.
	CumCounts []int64 `json:"cum_counts"`
	// Count and SumMS mirror the histogram's _count and _sum series.
	Count int64   `json:"count"`
	SumMS float64 `json:"sum_ms"`
}

// QuantileBracketMS returns the histogram bucket (lo, hi] containing
// the q-quantile (nearest-rank), with hi = +Inf when it falls past the
// last bound. Zero-count histograms bracket everything: (0, +Inf].
func (h *ServerHist) QuantileBracketMS(q float64) (lo, hi float64) {
	if h == nil || h.Count == 0 {
		return 0, math.Inf(1)
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	lo = 0
	for i, cum := range h.CumCounts {
		if cum >= rank {
			if i < len(h.BoundsMS) {
				return lo, h.BoundsMS[i]
			}
			return lo, math.Inf(1)
		}
		if i < len(h.BoundsMS) {
			lo = h.BoundsMS[i]
		}
	}
	return lo, math.Inf(1)
}

// scrapeMetrics fetches the Prometheus payload from the target:
// in-process via the metricsSource interface, over TCP via GET
// /metrics. Returns nil when the target exposes neither.
func scrapeMetrics(target Target) []byte {
	switch t := target.(type) {
	case *HandlerTarget:
		if src, ok := t.Handler.(metricsSource); ok {
			var buf bytes.Buffer
			if err := src.Metrics(&buf); err == nil {
				return buf.Bytes()
			}
		}
	case *HTTPTarget:
		client := t.Client
		if client == nil {
			client = http.DefaultClient
		}
		resp, err := client.Get(t.BaseURL + "/metrics")
		if err != nil {
			return nil
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			return nil
		}
		return b
	}
	return nil
}

// serverLatency parses a /metrics payload and folds the
// mvcloud_http_request_duration_seconds series into one histogram per
// endpoint, summed across the outcome label (cumulative counts add
// bucket-wise because every series shares the registry's bucket
// layout).
func serverLatency(payload []byte) (map[string]*ServerHist, error) {
	samples, err := obs.ParseText(payload)
	if err != nil {
		return nil, err
	}
	hists := make(map[string]*ServerHist)
	perBound := make(map[string]map[float64]int64)
	for _, s := range samples {
		ep := s.Label("endpoint")
		if ep == "" {
			continue
		}
		switch s.Name {
		case "mvcloud_http_request_duration_seconds_bucket":
			le := s.Label("le")
			bound := math.Inf(1)
			if le != "+Inf" {
				if _, err := fmt.Sscanf(le, "%g", &bound); err != nil {
					return nil, fmt.Errorf("loadgen: bad le %q: %v", le, err)
				}
				bound *= 1000 // seconds -> ms
			}
			m := perBound[ep]
			if m == nil {
				m = make(map[float64]int64)
				perBound[ep] = m
			}
			m[bound] += int64(s.Value)
		case "mvcloud_http_request_duration_seconds_sum":
			h := histFor(hists, ep)
			h.SumMS += s.Value * 1000
		case "mvcloud_http_request_duration_seconds_count":
			h := histFor(hists, ep)
			h.Count += int64(s.Value)
		}
	}
	for ep, m := range perBound {
		h := histFor(hists, ep)
		bounds := make([]float64, 0, len(m))
		for b := range m {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		for _, b := range bounds {
			if !math.IsInf(b, 1) {
				h.BoundsMS = append(h.BoundsMS, b)
			}
			h.CumCounts = append(h.CumCounts, m[b])
		}
	}
	return hists, nil
}

func histFor(hists map[string]*ServerHist, ep string) *ServerHist {
	h := hists[ep]
	if h == nil {
		h = &ServerHist{}
		hists[ep] = h
	}
	return h
}

// attachServerLatency scrapes the target and attaches per-endpoint
// server-side histograms to the result. Must run before probeAllocs so
// the scraped counts reflect the run, not the probe's replay traffic.
func attachServerLatency(target Target, res *Result) {
	payload := scrapeMetrics(target)
	if payload == nil {
		return
	}
	hists, err := serverLatency(payload)
	if err != nil {
		return
	}
	for ep, h := range hists {
		st, ok := res.Endpoints[ep]
		if !ok {
			continue
		}
		st.ServerLatency = h
		res.Endpoints[ep] = st
	}
}
