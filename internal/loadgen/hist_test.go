package loadgen

import (
	"testing"
	"time"
)

// TestQuantileExact pins the nearest-rank quantile math on known
// distributions — the numbers every LOAD_*.json percentile rests on.
func TestQuantileExact(t *testing.T) {
	mk := func(vals ...int) []time.Duration {
		out := make([]time.Duration, len(vals))
		for i, v := range vals {
			out[i] = time.Duration(v) * time.Millisecond
		}
		return out
	}
	cases := []struct {
		name   string
		sorted []time.Duration
		q      float64
		want   time.Duration
	}{
		{"empty", nil, 0.5, 0},
		{"single p50", mk(7), 0.5, 7 * time.Millisecond},
		{"single p99", mk(7), 0.99, 7 * time.Millisecond},
		{"single p0", mk(7), 0, 7 * time.Millisecond},
		{"two p50 is first", mk(1, 9), 0.5, 1 * time.Millisecond},
		{"two p51 is second", mk(1, 9), 0.51, 9 * time.Millisecond},
		// 1..10: nearest rank of q is ceil(10q).
		{"deciles p10", mk(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0.10, 1 * time.Millisecond},
		{"deciles p50", mk(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0.50, 5 * time.Millisecond},
		{"deciles p95", mk(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0.95, 10 * time.Millisecond},
		{"deciles p99", mk(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0.99, 10 * time.Millisecond},
		{"deciles p100", mk(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 1.0, 10 * time.Millisecond},
		{"deciles p0 clamps to min", mk(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0, 1 * time.Millisecond},
		{"negative q clamps to min", mk(1, 2, 3), -0.5, 1 * time.Millisecond},
		{"q over 1 clamps to max", mk(1, 2, 3), 1.5, 3 * time.Millisecond},
		// Uniform: any quantile is the value.
		{"uniform p95", mk(4, 4, 4, 4), 0.95, 4 * time.Millisecond},
		// Heavy tail: p99 of 100 samples where one is huge picks rank 99.
		{"tail p99 below spike", append(mk(make([]int, 0)...), func() []time.Duration {
			s := make([]time.Duration, 100)
			for i := range s {
				s[i] = time.Millisecond
			}
			s[99] = time.Second
			return s
		}()...), 0.99, time.Millisecond},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Quantile(c.sorted, c.q); got != c.want {
				t.Errorf("Quantile(%v, %g) = %v, want %v", c.sorted, c.q, got, c.want)
			}
		})
	}
}

// TestSummarize checks the full summary on a known distribution,
// including the empty and single-sample edges.
func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.P50 != 0 || s.Max != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}

	one := Summarize([]time.Duration{3 * time.Millisecond})
	if one.Count != 1 || one.P50 != 3*time.Millisecond || one.P99 != 3*time.Millisecond ||
		one.Max != 3*time.Millisecond || one.Mean != 3*time.Millisecond {
		t.Errorf("single-sample summary = %+v", one)
	}

	// Unsorted input: Summarize must sort before taking ranks.
	samples := []time.Duration{
		9 * time.Millisecond, 1 * time.Millisecond, 5 * time.Millisecond,
		3 * time.Millisecond, 7 * time.Millisecond,
	}
	s := Summarize(samples)
	if s.Count != 5 {
		t.Errorf("count = %d", s.Count)
	}
	if s.P50 != 5*time.Millisecond {
		t.Errorf("p50 = %v, want 5ms", s.P50)
	}
	if s.P95 != 9*time.Millisecond || s.P99 != 9*time.Millisecond || s.Max != 9*time.Millisecond {
		t.Errorf("tail = %+v", s)
	}
	if s.Mean != 5*time.Millisecond {
		t.Errorf("mean = %v, want 5ms", s.Mean)
	}
	// The input slice is sorted in place — documented behaviour.
	for i := 1; i < len(samples); i++ {
		if samples[i-1] > samples[i] {
			t.Errorf("input not sorted in place: %v", samples)
		}
	}
}
