package loadgen

import (
	"fmt"
	"math/rand"

	"vmcloud/internal/pricing"
)

// Mix weights the three POST endpoints in the synthesized traffic.
// Zero values fall back to the default advise-heavy 8:1:1 mix — the
// shape of an advisory fleet, where cheap point advisories dominate and
// grid studies are occasional.
type Mix struct {
	Advise  int `json:"advise"`
	Compare int `json:"compare"`
	Sweep   int `json:"sweep"`
}

func (m Mix) withDefaults() Mix {
	if m.Advise <= 0 && m.Compare <= 0 && m.Sweep <= 0 {
		return Mix{Advise: 8, Compare: 1, Sweep: 1}
	}
	if m.Advise < 0 {
		m.Advise = 0
	}
	if m.Compare < 0 {
		m.Compare = 0
	}
	if m.Sweep < 0 {
		m.Sweep = 0
	}
	return m
}

func (m Mix) String() string {
	return fmt.Sprintf("advise=%d,compare=%d,sweep=%d", m.Advise, m.Compare, m.Sweep)
}

// Config tunes one load run. Zero values select defaults sized for a
// quick local run; CI and the committed baseline pin their own values.
type Config struct {
	// Seed drives every random choice; identical configs synthesize
	// byte-identical request sequences.
	Seed int64
	// Tenants is the number of distinct tenant parameter families
	// (budgets, frequencies); default 4.
	Tenants int
	// Schemas is the number of distinct schema/workload variants per
	// tenant (dataset sizes, query counts); default 2.
	Schemas int
	// Requests is the total request count; default 1000.
	Requests int
	// Concurrency is the number of concurrent clients; default 16.
	Concurrency int
	// HitRatio is the target fraction of requests whose body repeats an
	// earlier request (and so should be served from cache once warm);
	// default 0.9. 0 < HitRatio < 1; a negative value means exactly 0.
	HitRatio float64
	// Mix weights the endpoints; zero means the default 8:1:1.
	Mix Mix
}

func (c Config) withDefaults() Config {
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.Schemas == 0 {
		c.Schemas = 2
	}
	if c.Requests == 0 {
		c.Requests = 1000
	}
	if c.Concurrency == 0 {
		c.Concurrency = 16
	}
	if c.HitRatio == 0 {
		c.HitRatio = 0.9
	}
	if c.HitRatio < 0 {
		c.HitRatio = 0
	}
	if c.HitRatio > 0.999 {
		c.HitRatio = 0.999
	}
	c.Mix = c.Mix.withDefaults()
	return c
}

// Request is one synthesized request.
type Request struct {
	// Endpoint is "advise", "compare" or "sweep"; Path the URL path.
	Endpoint string
	Path     string
	Body     []byte
	// Tenant/Schema identify the parameter family the body came from.
	Tenant, Schema int
	// First marks the first occurrence of this body in the sequence —
	// the request expected to miss (or lead a coalesced solve).
	First bool
}

// endpointGen builds the n-th distinct body for one endpoint. Bodies
// are parameterized by (tenant, schema, variant): the tenant varies the
// money knobs (budget, frequency), the schema varies the problem shape
// (dataset size, query count), and the variant walks scenarios.
type endpointGen struct {
	endpoint string
	path     string
	build    func(tenant, schema, variant int) []byte
}

// fleetProviders picks two adjacent catalog providers so compare/sweep
// grids stay small (2 providers × 2 fleets = 4 cells) but still rotate
// through the whole catalog across variants.
func fleetProviders(variant int) (string, string) {
	names := pricing.ProviderNames()
	a := names[variant%len(names)]
	b := names[(variant+1)%len(names)]
	if a > b {
		a, b = b, a
	}
	return a, b
}

func tenantBudget(tenant, variant int) int { return 20 + 3*tenant + variant }

func schemaRows(schema int) int64 { return int64(schema+1) * 5_000_000 }

func schemaQueries(schema int) int { return 3 + schema%8 }

func newGens() []endpointGen {
	return []endpointGen{
		{
			endpoint: "advise",
			path:     "/v1/advise",
			build: func(tenant, schema, variant int) []byte {
				scenario := variant % 4
				// variant/4 perturbs fact_rows so every variant is a distinct
				// body even when the scenario knob cycles (mv3 alpha and
				// pareto steps have bounded ranges).
				common := fmt.Sprintf(`"fact_rows":%d,"queries":%d,"frequency":%d`,
					schemaRows(schema)+int64(variant/4), schemaQueries(schema), 10+7*tenant)
				switch scenario {
				case 0:
					return fmt.Appendf(nil, `{"scenario":"mv1","budget":%d,%s}`,
						tenantBudget(tenant, variant/4), common)
				case 1:
					return fmt.Appendf(nil, `{"scenario":"mv2","limit":"%dh",%s}`,
						2+schema+variant/4, common)
				case 2:
					return fmt.Appendf(nil, `{"scenario":"mv3","alpha":0.%d5,%s}`,
						(tenant+variant/4)%9, common)
				default:
					return fmt.Appendf(nil, `{"scenario":"pareto","steps":%d,%s}`,
						3+variant/4%5, common)
				}
			},
		},
		{
			endpoint: "compare",
			path:     "/v1/compare",
			build: func(tenant, schema, variant int) []byte {
				a, b := fleetProviders(variant)
				return fmt.Appendf(nil,
					`{"budget":%d,"limit":"%dh","providers":[%q,%q],"fleet_sizes":[3,5],"fact_rows":%d,"queries":%d,"frequency":%d}`,
					tenantBudget(tenant, variant), 2+schema, a, b,
					schemaRows(schema), schemaQueries(schema), 10+7*tenant)
			},
		},
		{
			endpoint: "sweep",
			path:     "/v1/sweep",
			build: func(tenant, schema, variant int) []byte {
				a, b := fleetProviders(variant + 1)
				return fmt.Appendf(nil,
					`{"budget":%d,"providers":[%q,%q],"fleet_sizes":[3,5],"fact_rows":%d,"queries":%d,"frequency":%d}`,
					tenantBudget(tenant, variant), a, b,
					schemaRows(schema), schemaQueries(schema), 10+7*tenant)
			},
		},
	}
}

// Synthesize builds the deterministic request sequence for a config:
// endpoints drawn by mix weight, bodies drawn fresh with probability
// 1-HitRatio (a distinct tenant × schema × variant problem) and
// otherwise repeated uniformly from the bodies already issued for that
// endpoint. First occurrences are the expected cache misses, repeats
// the expected hits; the realized ratio converges to HitRatio as the
// run grows.
func Synthesize(cfg Config) []Request {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	gens := newGens()

	weights := []int{cfg.Mix.Advise, cfg.Mix.Compare, cfg.Mix.Sweep}
	totalWeight := 0
	for _, w := range weights {
		totalWeight += w
	}

	issued := make([][]Request, len(gens)) // distinct bodies issued per endpoint
	reqs := make([]Request, 0, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		// Weighted endpoint draw.
		g := 0
		for pick := rng.Intn(totalWeight); g < len(weights); g++ {
			if pick < weights[g] {
				break
			}
			pick -= weights[g]
		}
		fresh := len(issued[g]) == 0 || rng.Float64() >= cfg.HitRatio
		var r Request
		if fresh {
			n := len(issued[g])
			tenant := n % cfg.Tenants
			schema := (n / cfg.Tenants) % cfg.Schemas
			variant := n / (cfg.Tenants * cfg.Schemas)
			r = Request{
				Endpoint: gens[g].endpoint,
				Path:     gens[g].path,
				Body:     gens[g].build(tenant, schema, variant),
				Tenant:   tenant,
				Schema:   schema,
				First:    true,
			}
			issued[g] = append(issued[g], r)
		} else {
			r = issued[g][rng.Intn(len(issued[g]))]
			r.First = false
		}
		reqs = append(reqs, r)
	}
	return reqs
}
