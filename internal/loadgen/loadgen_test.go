package loadgen

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"vmcloud/internal/server"
)

// TestSynthesizeDeterministic: identical configs must synthesize
// byte-identical sequences — the property every committed baseline and
// CI gate rests on.
func TestSynthesizeDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Requests: 500}
	a := Synthesize(cfg)
	b := Synthesize(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Endpoint != b[i].Endpoint || a[i].First != b[i].First ||
			!bytes.Equal(a[i].Body, b[i].Body) {
			t.Fatalf("sequence diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must produce a different sequence.
	c := Synthesize(Config{Seed: 43, Requests: 500})
	same := true
	for i := range a {
		if a[i].Endpoint != c[i].Endpoint || !bytes.Equal(a[i].Body, c[i].Body) {
			same = false
			break
		}
	}
	if same {
		t.Error("seed 42 and 43 synthesized identical sequences")
	}
}

// TestSynthesizeMixAndHitRatio checks the mix weights and the realized
// repeat ratio converge on large runs.
func TestSynthesizeMixAndHitRatio(t *testing.T) {
	cfg := Config{Seed: 7, Requests: 20000, HitRatio: 0.9,
		Mix: Mix{Advise: 8, Compare: 1, Sweep: 1}}
	reqs := Synthesize(cfg)

	count := map[string]int{}
	firsts := 0
	for _, r := range reqs {
		count[r.Endpoint]++
		if r.First {
			firsts++
		}
		if !strings.HasPrefix(r.Path, "/v1/") {
			t.Fatalf("bad path %q", r.Path)
		}
	}
	n := float64(len(reqs))
	if f := float64(count["advise"]) / n; f < 0.75 || f > 0.85 {
		t.Errorf("advise fraction %.3f, want ~0.8", f)
	}
	if f := float64(count["compare"]) / n; f < 0.07 || f > 0.13 {
		t.Errorf("compare fraction %.3f, want ~0.1", f)
	}
	if f := float64(count["sweep"]) / n; f < 0.07 || f > 0.13 {
		t.Errorf("sweep fraction %.3f, want ~0.1", f)
	}
	// Repeat fraction ≈ HitRatio (firsts are the fresh draws).
	if repeat := 1 - float64(firsts)/n; repeat < 0.87 || repeat > 0.93 {
		t.Errorf("repeat fraction %.3f, want ~0.9", repeat)
	}

	// Distinct bodies per endpoint are actually distinct.
	for _, ep := range []string{"advise", "compare", "sweep"} {
		seen := map[string]bool{}
		for _, r := range reqs {
			if r.Endpoint != ep || !r.First {
				continue
			}
			if seen[string(r.Body)] {
				t.Errorf("%s: duplicate first body %s", ep, r.Body)
			}
			seen[string(r.Body)] = true
		}
	}
}

// TestRunHandlerTarget drives the real server handler stack in-process
// and checks the per-endpoint accounting, hit behaviour and the
// measured cache-hit alloc budget from the ISSUE (≤ 2 allocs/request).
func TestRunHandlerTarget(t *testing.T) {
	srv := server.New(server.Options{})
	cfg := Config{Seed: 1, Requests: 600, Concurrency: 8, HitRatio: 0.9}
	res, err := Run(cfg, NewHandlerTarget(srv))
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != cfg.Requests {
		t.Fatalf("total %d, want %d", res.Total, cfg.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors in synthesized traffic", res.Errors)
	}
	for _, ep := range []string{"advise", "compare", "sweep"} {
		st, ok := res.Endpoints[ep]
		if !ok {
			t.Fatalf("no stats for %s", ep)
		}
		if st.Requests == 0 {
			t.Errorf("%s: zero requests", ep)
		}
		if st.Hits+st.Misses+st.Coalesced != st.Requests {
			t.Errorf("%s: hits %d + misses %d + coalesced %d != requests %d",
				ep, st.Hits, st.Misses, st.Coalesced, st.Requests)
		}
		if st.Hits == 0 {
			t.Errorf("%s: zero cache hits at hit-ratio 0.9", ep)
		}
		if st.Latency.Count != st.Requests {
			t.Errorf("%s: %d latency samples for %d requests", ep, st.Latency.Count, st.Requests)
		}
		if st.Latency.P50 <= 0 || st.Latency.Max < st.Latency.P99 || st.Latency.P99 < st.Latency.P50 {
			t.Errorf("%s: inconsistent latency summary %+v", ep, st.Latency)
		}
		if st.HitAllocs < 0 {
			t.Errorf("%s: alloc probe did not run in-process", ep)
		} else if st.HitAllocs > 2 {
			t.Errorf("%s: cache-hit path costs %.1f allocs/request, budget 2", ep, st.HitAllocs)
		}
	}
}

// TestRunHTTPTarget drives the same stack over real TCP.
func TestRunHTTPTarget(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Options{}))
	defer ts.Close()

	cfg := Config{Seed: 2, Requests: 200, Concurrency: 8, HitRatio: 0.8}
	res, err := Run(cfg, &HTTPTarget{BaseURL: ts.URL, Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors over TCP", res.Errors)
	}
	if res.Total != cfg.Requests {
		t.Fatalf("total %d, want %d", res.Total, cfg.Requests)
	}
	for ep, st := range res.Endpoints {
		if st.Hits == 0 && st.Requests > 20 {
			t.Errorf("%s: no cache hits over TCP", ep)
		}
		if st.HitAllocs != -1 {
			t.Errorf("%s: alloc probe should be skipped over TCP, got %.1f", ep, st.HitAllocs)
		}
	}
}

// TestReportRoundTrip: Snapshot → Marshal → ParseReport is lossless for
// everything the gate reads.
func TestReportRoundTrip(t *testing.T) {
	srv := server.New(server.Options{})
	res, err := Run(Config{Seed: 3, Requests: 120, Concurrency: 4}, NewHandlerTarget(srv))
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Snapshot("2026-08-08")
	if rep.Date != "2026-08-08" || rep.Seed != 3 || rep.Requests != 120 {
		t.Fatalf("snapshot header wrong: %+v", rep)
	}
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Date != rep.Date || back.Mix != rep.Mix || len(back.Endpoints) != len(rep.Endpoints) {
		t.Fatalf("round trip lost fields: %+v vs %+v", back, rep)
	}
	for ep, want := range rep.Endpoints {
		got := back.Endpoints[ep]
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: %+v != %+v", ep, got, want)
		}
	}
	if !strings.Contains(rep.Render(), "endpoint") {
		t.Error("Render missing table header")
	}
}

// TestCompareGate pins the SLO gate semantics: generous on latency,
// tight on allocations, tolerant of endpoint set changes.
func TestCompareGate(t *testing.T) {
	base := &Report{Endpoints: map[string]EndpointReport{
		"advise": {P95MS: 1.0, HitAllocsPerRequest: 0},
		"sweep":  {P95MS: 10.0, HitAllocsPerRequest: 0},
	}}

	t.Run("pass within factors", func(t *testing.T) {
		fresh := &Report{Endpoints: map[string]EndpointReport{
			"advise": {P95MS: 1.9, HitAllocsPerRequest: 2}, // <2x, within slack
			"sweep":  {P95MS: 12.0, HitAllocsPerRequest: 0},
		}}
		rows, regs := Compare(base, fresh, Gate{})
		if len(regs) != 0 {
			t.Errorf("unexpected regressions: %v", regs)
		}
		if len(rows) != 2 {
			t.Errorf("want 2 rows, got %v", rows)
		}
	})

	t.Run("latency regression gates", func(t *testing.T) {
		fresh := &Report{Endpoints: map[string]EndpointReport{
			"advise": {P95MS: 2.5, HitAllocsPerRequest: 0}, // >2x baseline
			"sweep":  {P95MS: 10.0, HitAllocsPerRequest: 0},
		}}
		_, regs := Compare(base, fresh, Gate{})
		if len(regs) != 1 || !strings.Contains(regs[0], "advise p95") {
			t.Errorf("want one advise p95 regression, got %v", regs)
		}
	})

	t.Run("alloc regression gates", func(t *testing.T) {
		fresh := &Report{Endpoints: map[string]EndpointReport{
			"advise": {P95MS: 1.0, HitAllocsPerRequest: 5}, // 0*1.5+2=2 < 5
			"sweep":  {P95MS: 10.0, HitAllocsPerRequest: 0},
		}}
		_, regs := Compare(base, fresh, Gate{})
		if len(regs) != 1 || !strings.Contains(regs[0], "allocs") {
			t.Errorf("want one alloc regression, got %v", regs)
		}
	})

	t.Run("unknown allocs never gate", func(t *testing.T) {
		fresh := &Report{Endpoints: map[string]EndpointReport{
			"advise": {P95MS: 1.0, HitAllocsPerRequest: -1},
			"sweep":  {P95MS: 10.0, HitAllocsPerRequest: -1},
		}}
		if _, regs := Compare(base, fresh, Gate{}); len(regs) != 0 {
			t.Errorf("unknown allocs gated: %v", regs)
		}
	})

	t.Run("endpoint set change reports but never gates", func(t *testing.T) {
		fresh := &Report{Endpoints: map[string]EndpointReport{
			"advise":  {P95MS: 1.0},
			"compare": {P95MS: 1.0},
		}}
		rows, regs := Compare(base, fresh, Gate{})
		if len(regs) != 0 {
			t.Errorf("set change gated: %v", regs)
		}
		joined := strings.Join(rows, "\n")
		if !strings.Contains(joined, "new endpoint") || !strings.Contains(joined, "removed endpoint") {
			t.Errorf("set change not reported: %v", rows)
		}
	})
}

// TestHandlerTargetMatchesHTTP sanity-checks that the in-process target
// returns the same status and cache headers as the real network path.
func TestHandlerTargetMatchesHTTP(t *testing.T) {
	srv := server.New(server.Options{})
	ts := httptest.NewServer(server.New(server.Options{}))
	defer ts.Close()
	ht := NewHandlerTarget(srv)
	tt := &HTTPTarget{BaseURL: ts.URL, Client: ts.Client()}

	body := []byte(`{"scenario":"mv1","budget":20,"fact_rows":5000000,"queries":3,"frequency":10}`)
	for i := 0; i < 2; i++ {
		p1, err1 := ht.Do("/v1/advise", body)
		p2, err2 := tt.Do("/v1/advise", body)
		if err1 != nil || err2 != nil {
			t.Fatalf("errors: %v, %v", err1, err2)
		}
		if p1.Status != http.StatusOK || p1 != p2 {
			t.Fatalf("round %d: in-process %+v vs TCP %+v", i, p1, p2)
		}
	}
}
