package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Probe is what one request observed: the HTTP status, the X-Cache
// header ("hit", "miss", "coalesced", "stale" or empty), and whether
// the response was served degraded (X-Degraded: true — the solve
// stopped at its deadline with the best incumbent).
type Probe struct {
	Status   int
	XCache   string
	Degraded bool
}

// Target is where synthesized traffic lands: the in-process handler
// stack, or a real server over TCP. Do must be safe for concurrent use.
type Target interface {
	// Do posts body to path and returns what the response reported.
	Do(path string, body []byte) (Probe, error)
}

// discardWriter is a minimal ResponseWriter that keeps the status and
// X-Cache header and discards the body — the in-process equivalent of a
// client that drains the response. Unlike httptest.NewRecorder it
// retains nothing per request, so latency and allocation measurements
// see the handler stack, not the recorder.
type discardWriter struct {
	h      http.Header
	status int
	n      int64
}

func (w *discardWriter) Header() http.Header { return w.h }
func (w *discardWriter) WriteHeader(s int)   { w.status = s }
func (w *discardWriter) Write(b []byte) (int, error) {
	w.n += int64(len(b))
	return len(b), nil
}

// replayBody is a reusable io.ReadCloser over a byte slice.
type replayBody struct{ bytes.Reader }

func (*replayBody) Close() error { return nil }

// HandlerTarget drives an http.Handler in-process — zero network stack,
// so percentiles and allocs/request isolate the serving layer itself.
// Each Do reuses per-goroutine request machinery from a pool.
type HandlerTarget struct {
	Handler http.Handler
	pool    sync.Pool // *handlerScratch
}

type handlerScratch struct {
	req  http.Request
	url  url.URL
	body replayBody
	w    discardWriter
}

// NewHandlerTarget wraps a handler (typically server.New(...)).
func NewHandlerTarget(h http.Handler) *HandlerTarget {
	return &HandlerTarget{Handler: h}
}

func (t *HandlerTarget) Do(path string, body []byte) (Probe, error) {
	sc, _ := t.pool.Get().(*handlerScratch)
	if sc == nil {
		sc = &handlerScratch{}
		sc.req.Method = "POST"
		sc.req.URL = &sc.url
		sc.req.Body = &sc.body
		sc.w.h = make(http.Header, 4)
	}
	defer t.pool.Put(sc)
	sc.url.Path = path
	sc.body.Reset(body)
	sc.w.status = 0
	sc.w.n = 0
	delete(sc.w.h, "X-Cache")
	delete(sc.w.h, "X-Degraded")
	delete(sc.w.h, "Retry-After")
	t.Handler.ServeHTTP(&sc.w, &sc.req)
	//mvlint:allow noretain -- Probe carries only the scalar status copied by value and immutable header strings; no scratch buffer aliases escape
	return Probe{
		Status:   sc.w.status,
		XCache:   sc.w.h.Get("X-Cache"),
		Degraded: sc.w.h.Get("X-Degraded") == "true",
	}, nil
}

// HTTPTarget drives a live server over TCP — the full network stack,
// connection pool included.
type HTTPTarget struct {
	BaseURL string
	Client  *http.Client
}

func (t *HTTPTarget) Do(path string, body []byte) (Probe, error) {
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(t.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return Probe{}, err
	}
	defer resp.Body.Close()
	pr := Probe{
		Status:   resp.StatusCode,
		XCache:   resp.Header.Get("X-Cache"),
		Degraded: resp.Header.Get("X-Degraded") == "true",
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return pr, err
	}
	return pr, nil
}

// endpointRecorder accumulates one worker's samples for one endpoint;
// shards are merged after the run so recording never contends.
type endpointRecorder struct {
	lat       []time.Duration
	errors    int
	hits      int
	misses    int
	coalesced int
	shed      int
	degraded  int
	stale     int
}

// EndpointStats is the merged, summarized outcome for one endpoint.
type EndpointStats struct {
	Requests  int
	Errors    int
	Hits      int
	Misses    int
	Coalesced int
	// Shed counts 429s from admission control (expected under the
	// overload scenarios, a bug anywhere else); Degraded counts 200s
	// whose solve stopped at its deadline; Stale counts shed requests
	// served an evicted cache entry (X-Cache: stale).
	Shed     int
	Degraded int
	Stale    int
	Latency  LatencySummary
	// HitAllocs is the measured allocations per request on the
	// steady-state cache-hit path (serial probe after the run);
	// negative when the target cannot be probed in-process.
	HitAllocs float64
	// ServerLatency is the endpoint's server-side latency histogram
	// scraped from /metrics after the run (nil when the target exposes
	// no metrics).
	ServerLatency *ServerHist
}

// Result is one finished load run.
type Result struct {
	Config    Config
	Wall      time.Duration
	Total     int
	Errors    int
	Endpoints map[string]EndpointStats
}

// Run synthesizes the sequence for cfg and drives it at the target from
// cfg.Concurrency workers. Requests are consumed from one shared
// cursor, so the interleaving is scheduler-dependent but the request
// multiset is exactly the synthesized sequence. Any non-200 status
// other than a 429 shed counts as an error (the synthesized traffic is
// all valid, so an error is a harness or server bug, not noise); sheds,
// degraded responses and stale serves are tallied separately.
func Run(cfg Config, target Target) (*Result, error) {
	cfg = cfg.withDefaults()
	reqs := Synthesize(cfg)
	if len(reqs) == 0 {
		return nil, fmt.Errorf("loadgen: empty request sequence")
	}

	workers := cfg.Concurrency
	shards := make([]map[string]*endpointRecorder, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		shards[w] = make(map[string]*endpointRecorder, 3)
		wg.Add(1)
		go func(shard map[string]*endpointRecorder) {
			defer wg.Done()
			for {
				i := cursor.Add(1) - 1
				if i >= int64(len(reqs)) {
					return
				}
				r := reqs[i]
				rec := shard[r.Endpoint]
				if rec == nil {
					rec = &endpointRecorder{}
					shard[r.Endpoint] = rec
				}
				t0 := time.Now()
				pr, err := target.Do(r.Path, r.Body)
				d := time.Since(t0)
				rec.lat = append(rec.lat, d)
				switch {
				case err != nil:
					rec.errors++
					continue
				case pr.Status == http.StatusTooManyRequests:
					// Admission-control shed: an intended overload outcome,
					// tracked separately from errors.
					rec.shed++
					continue
				case pr.Status != http.StatusOK:
					rec.errors++
					continue
				}
				if pr.Degraded {
					rec.degraded++
				}
				switch pr.XCache {
				case "hit":
					rec.hits++
				case "miss":
					rec.misses++
				case "coalesced":
					rec.coalesced++
				case "stale":
					rec.stale++
				}
			}
		}(shards[w])
	}
	wg.Wait()
	wall := time.Since(start)

	res := &Result{
		Config:    cfg,
		Wall:      wall,
		Endpoints: make(map[string]EndpointStats, 3),
	}
	for _, shard := range shards {
		for ep, rec := range shard {
			st := res.Endpoints[ep]
			st.Requests += len(rec.lat)
			st.Errors += rec.errors
			st.Hits += rec.hits
			st.Misses += rec.misses
			st.Coalesced += rec.coalesced
			st.Shed += rec.shed
			st.Degraded += rec.degraded
			st.Stale += rec.stale
			res.Endpoints[ep] = st
		}
	}
	for ep := range res.Endpoints {
		var all []time.Duration
		for _, shard := range shards {
			if rec := shard[ep]; rec != nil {
				all = append(all, rec.lat...)
			}
		}
		st := res.Endpoints[ep]
		st.Latency = Summarize(all)
		st.HitAllocs = -1
		res.Endpoints[ep] = st
		res.Total += st.Requests
		res.Errors += st.Errors
	}

	// Scrape the server-side latency histograms first: the alloc probe
	// below replays hundreds of extra requests that would otherwise
	// pollute the scraped counts.
	attachServerLatency(target, res)

	// Serial alloc probe: replay one known-cached body per endpoint and
	// measure steady-state allocations through the handler stack. Only
	// meaningful in-process — over TCP the client stack dominates.
	if ht, ok := target.(*HandlerTarget); ok {
		probeAllocs(ht, reqs, res)
	}
	return res, nil
}

// probeAllocs measures allocs/request on the cache-hit path of each
// endpoint present in the run, using the endpoint's first synthesized
// body (guaranteed warm after the run).
func probeAllocs(t *HandlerTarget, reqs []Request, res *Result) {
	probed := make(map[string]bool, len(res.Endpoints))
	for _, r := range reqs {
		if probed[r.Endpoint] {
			continue
		}
		probed[r.Endpoint] = true
		// Warm the body (a long run may have evicted it from the LRU by
		// the time the run ends), then confirm the next request hits.
		t.Do(r.Path, r.Body)
		if pr, _ := t.Do(r.Path, r.Body); pr.XCache != "hit" {
			continue
		}
		allocs := allocsPerRun(200, func() {
			t.Do(r.Path, r.Body)
		})
		st := res.Endpoints[r.Endpoint]
		st.HitAllocs = allocs
		res.Endpoints[r.Endpoint] = st
	}
}

// allocsPerRun is testing.AllocsPerRun without the testing dependency:
// mallocs measured across runs serial executions of f on one proc.
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm up pools and lazily-built state
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}
