package loadgen

import (
	"math"
	"net/http"
	"strings"
	"testing"

	"vmcloud/internal/server"
)

// TestQuantileBracketMS pins the nearest-rank bucket bracketing used by
// the p95 cross-check.
func TestQuantileBracketMS(t *testing.T) {
	h := &ServerHist{
		BoundsMS:  []float64{1, 10, 100},
		CumCounts: []int64{2, 8, 9, 10}, // last entry is +Inf
		Count:     10,
	}
	cases := []struct {
		q      float64
		lo, hi float64
	}{
		{0.10, 0, 1},             // rank 1 -> first bucket
		{0.20, 0, 1},             // rank 2 still inside (0, 1]
		{0.50, 1, 10},            // rank 5 -> (1, 10]
		{0.90, 10, 100},          // rank 9 -> (10, 100]
		{0.95, 100, math.Inf(1)}, // rank 10 -> +Inf bucket
		{1.00, 100, math.Inf(1)}, // max
	}
	for _, tc := range cases {
		lo, hi := h.QuantileBracketMS(tc.q)
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("q=%.2f: bracket (%g, %g], want (%g, %g]", tc.q, lo, hi, tc.lo, tc.hi)
		}
	}
	// Nil and empty histograms bracket everything.
	var nilH *ServerHist
	if lo, hi := nilH.QuantileBracketMS(0.95); lo != 0 || !math.IsInf(hi, 1) {
		t.Errorf("nil bracket (%g, %g]", lo, hi)
	}
	if lo, hi := (&ServerHist{}).QuantileBracketMS(0.95); lo != 0 || !math.IsInf(hi, 1) {
		t.Errorf("empty bracket (%g, %g]", lo, hi)
	}
}

// TestServerLatencyParse: the scrape folds one endpoint's outcome series
// into a single histogram — cumulative counts add bucket-wise, sums and
// counts add, and bounds convert from seconds to milliseconds.
func TestServerLatencyParse(t *testing.T) {
	payload := strings.Join([]string{
		`# TYPE mvcloud_http_request_duration_seconds histogram`,
		`mvcloud_http_request_duration_seconds_bucket{endpoint="advise",outcome="hit",le="0.001"} 90`,
		`mvcloud_http_request_duration_seconds_bucket{endpoint="advise",outcome="hit",le="+Inf"} 90`,
		`mvcloud_http_request_duration_seconds_sum{endpoint="advise",outcome="hit"} 0.09`,
		`mvcloud_http_request_duration_seconds_count{endpoint="advise",outcome="hit"} 90`,
		`mvcloud_http_request_duration_seconds_bucket{endpoint="advise",outcome="solve",le="0.001"} 0`,
		`mvcloud_http_request_duration_seconds_bucket{endpoint="advise",outcome="solve",le="+Inf"} 10`,
		`mvcloud_http_request_duration_seconds_sum{endpoint="advise",outcome="solve"} 0.5`,
		`mvcloud_http_request_duration_seconds_count{endpoint="advise",outcome="solve"} 10`,
		`# TYPE unrelated_total counter`,
		`unrelated_total{endpoint="advise"} 3`,
	}, "\n")
	hists, err := serverLatency([]byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	h := hists["advise"]
	if h == nil {
		t.Fatal("no advise histogram")
	}
	if len(h.BoundsMS) != 1 || h.BoundsMS[0] != 1 {
		t.Errorf("BoundsMS = %v, want [1]", h.BoundsMS)
	}
	if len(h.CumCounts) != 2 || h.CumCounts[0] != 90 || h.CumCounts[1] != 100 {
		t.Errorf("CumCounts = %v, want [90 100]", h.CumCounts)
	}
	if h.Count != 100 {
		t.Errorf("Count = %d, want 100", h.Count)
	}
	if math.Abs(h.SumMS-590) > 1e-9 {
		t.Errorf("SumMS = %g, want 590", h.SumMS)
	}
}

// TestServerClientP95Bracket is the telemetry cross-check: on an
// in-process run the server-side histogram's p95 bucket must bracket the
// client-side nearest-rank p95. The client measures around ServeHTTP, so
// every client sample is >= its server sample and the order statistics
// can only shift upward — the check allows exactly one bucket of upward
// slack for that wrapper overhead at a bucket boundary.
func TestServerClientP95Bracket(t *testing.T) {
	srv := server.New(server.Options{})
	res, err := Run(Config{Seed: 11, Requests: 400, Concurrency: 4}, NewHandlerTarget(srv))
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for ep, st := range res.Endpoints {
		h := st.ServerLatency
		if h == nil {
			t.Errorf("%s: no server-side histogram attached", ep)
			continue
		}
		if h.Count != int64(st.Requests) {
			t.Errorf("%s: server count %d != client requests %d", ep, h.Count, st.Requests)
		}
		lo, hi := h.QuantileBracketMS(0.95)
		// One bucket of upward slack: the bound after hi, or +Inf.
		slackHi := math.Inf(1)
		for i, b := range h.BoundsMS {
			if b == hi && i+1 < len(h.BoundsMS) {
				slackHi = h.BoundsMS[i+1]
			}
		}
		clientP95 := ms(st.Latency.P95)
		if clientP95 < lo {
			t.Errorf("%s: client p95 %.3f ms below server bucket (%g, %g]", ep, clientP95, lo, hi)
		}
		if !math.IsInf(hi, 1) && clientP95 > slackHi {
			t.Errorf("%s: client p95 %.3f ms above server bucket (%g, %g] plus one-bucket slack %g",
				ep, clientP95, lo, hi, slackHi)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no endpoints checked")
	}
}

// okHandler is a metrics-less stand-in target: always 200, always a
// cache hit, exposes no Metrics method.
type okHandler struct{}

func (okHandler) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("X-Cache", "hit")
	w.WriteHeader(http.StatusOK)
}

// TestScrapeSkippedOverPlainHandler: a handler with no Metrics method
// must leave ServerLatency nil rather than fail the run.
func TestScrapeSkippedOverPlainHandler(t *testing.T) {
	res, err := Run(Config{Seed: 1, Requests: 40, Concurrency: 2}, NewHandlerTarget(okHandler{}))
	if err != nil {
		t.Fatal(err)
	}
	for ep, st := range res.Endpoints {
		if st.ServerLatency != nil {
			t.Errorf("%s: histogram attached from a target with no metrics", ep)
		}
	}
}
