package loadgen

import (
	"testing"
	"time"

	"vmcloud/internal/server"
)

// TestOverloadShedsHeavyKeepsAdviseE2E is the overload scenario run
// in-process: a sweep-flooded mix against a server whose heavy class
// has one worker and no queue. The contract under test is the whole
// admission-control story — heavy solves are shed with 429 (tallied as
// sheds, not errors), the cheap advise class keeps serving 200s with a
// bounded p95, and after the run drains not a single solve goroutine
// is left behind.
func TestOverloadShedsHeavyKeepsAdviseE2E(t *testing.T) {
	srv := server.New(server.Options{
		RequestTimeout: time.Minute,
		HeavyWorkers:   1,
		HeavyQueue:     -1,
		// Every heavy solve also sleeps, so the single worker stays busy
		// and the flood behind it is genuinely shed. Deterministic: the
		// chaos decisions depend only on (seed, key).
		Chaos: &server.ChaosConfig{Seed: 3, LatencyProb: 1, Latency: 50 * time.Millisecond},
	})
	cfg := Config{
		Seed:        11,
		Tenants:     4,
		Schemas:     2,
		Requests:    300,
		Concurrency: 16,
		HitRatio:    0.3, // mostly fresh bodies: each sweep is a new solve
		Mix:         Mix{Advise: 2, Compare: 1, Sweep: 8},
	}
	res, err := Run(cfg, NewHandlerTarget(srv))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d hard errors under overload (sheds must be 429s, not errors)", res.Errors)
	}

	var shed int
	for _, ep := range []string{"compare", "sweep"} {
		shed += res.Endpoints[ep].Shed
	}
	if shed == 0 {
		t.Error("sweep flood against a 1-worker/0-queue heavy class shed nothing")
	}
	adv := res.Endpoints["advise"]
	if adv.Requests == 0 {
		t.Fatal("mix synthesized no advise traffic")
	}
	if adv.Shed != 0 {
		t.Errorf("advise shed %d requests; the cheap class must not feel heavy overload", adv.Shed)
	}
	// Advise p95 stays bounded while the heavy flood is being shed: the
	// classes have separate worker pools, and every advise request is
	// either a cache hit or a cheap knapsack solve. The bound is very
	// generous (race-detector CI runs cold solves several times slower)
	// but catastrophic head-of-line blocking — advise requests queued
	// behind the single 50ms+ heavy worker for the whole run — blows
	// straight through it.
	if adv.Latency.P95 > 10*time.Second {
		t.Errorf("advise p95 = %v under heavy flood, want bounded", adv.Latency.P95)
	}

	// Drain: no detached solve goroutines survive the run.
	deadline := time.Now().Add(10 * time.Second)
	for srv.InflightSolves() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := srv.InflightSolves(); n != 0 {
		t.Fatalf("%d solve goroutines still live after drain", n)
	}
	t.Logf("advise p95=%v shed=%d (heavy) requests=%d", adv.Latency.P95, shed, res.Total)
}

// TestChaosPanicContainmentE2E floods a chaos server whose solves
// panic with probability ~1/3 and checks the daemon-level contract:
// panicking solves become 500s (counted as errors by the harness),
// everything else still serves, and the run drains clean. This is the
// fault-injection sweep the CI race step picks up.
func TestChaosPanicContainmentE2E(t *testing.T) {
	srv := server.New(server.Options{
		RequestTimeout: time.Minute,
		Chaos:          &server.ChaosConfig{Seed: 9, PanicProb: 0.34},
	})
	cfg := Config{
		Seed:        13,
		Tenants:     2,
		Schemas:     2,
		Requests:    200,
		Concurrency: 8,
		HitRatio:    0.5,
	}
	res, err := Run(cfg, NewHandlerTarget(srv))
	if err != nil {
		t.Fatal(err)
	}
	// The seeded coin decides per key, so with ~1/3 probability over
	// dozens of distinct keys both sides are guaranteed in practice:
	// some solves panicked (surfacing as errors), some served fine.
	if res.Errors == 0 {
		t.Error("panic injection at p=0.34 produced no errors; chaos not engaging")
	}
	var served int
	for _, st := range res.Endpoints {
		served += st.Hits + st.Misses + st.Coalesced
	}
	if served == 0 {
		t.Error("no request served successfully; panics were not contained per-solve")
	}
	if res.Errors+served+sumShed(res) != res.Total {
		t.Errorf("outcome accounting: errors %d + served %d + shed %d != total %d",
			res.Errors, served, sumShed(res), res.Total)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.InflightSolves() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := srv.InflightSolves(); n != 0 {
		t.Fatalf("%d solve goroutines still live after drain", n)
	}
	t.Logf("errors(panics)=%d served=%d", res.Errors, served)
}

func sumShed(res *Result) int {
	n := 0
	for _, st := range res.Endpoints {
		n += st.Shed
	}
	return n
}
