package loadgen

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
)

// Report is the machine-readable snapshot of one load run — the
// LOAD_<date>.json shape, the latency-SLO sibling of scripts/bench.sh's
// BENCH_<date>.json. A committed report is the baseline a CI gate diffs
// fresh runs against.
type Report struct {
	Date        string  `json:"date"`
	Go          string  `json:"go"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	Seed        int64   `json:"seed"`
	Tenants     int     `json:"tenants"`
	Schemas     int     `json:"schemas"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	HitRatio    float64 `json:"hit_ratio"`
	Mix         string  `json:"mix"`
	// DurationMS is the wall clock of the whole run; ThroughputRPS the
	// aggregate request rate over it.
	DurationMS    float64 `json:"duration_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Errors        int     `json:"errors"`
	// Endpoints maps "advise"/"compare"/"sweep" to their summaries.
	Endpoints map[string]EndpointReport `json:"endpoints"`
}

// EndpointReport is one endpoint's slice of the snapshot.
type EndpointReport struct {
	Requests  int `json:"requests"`
	Errors    int `json:"errors"`
	Hits      int `json:"hits"`
	Misses    int `json:"misses"`
	Coalesced int `json:"coalesced"`
	// Shed/Degraded/Stale are the overload outcomes (429s from admission
	// control, deadline-degraded 200s, stale cache serves); omitted when
	// zero so pre-overload baselines stay byte-identical.
	Shed     int     `json:"shed,omitempty"`
	Degraded int     `json:"degraded,omitempty"`
	Stale    int     `json:"stale,omitempty"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
	MaxMS    float64 `json:"max_ms"`
	MeanMS   float64 `json:"mean_ms"`
	// HitAllocsPerRequest is the measured allocations per request on the
	// steady-state cache-hit path; -1 when the target could not be
	// probed in-process.
	HitAllocsPerRequest float64 `json:"hit_allocs_per_request"`
	// ServerLatency embeds the endpoint's server-side latency histogram
	// scraped from /metrics — the view dashboards see, recorded next to
	// the client-side percentiles above so a committed baseline carries
	// both. Omitted when the target exposes no metrics.
	ServerLatency *ServerHist `json:"server_latency,omitempty"`
}

// Snapshot renders a finished run as a Report. date is injected so a
// committed baseline regenerates byte-identically.
func (r *Result) Snapshot(date string) *Report {
	rep := &Report{
		Date:        date,
		Go:          runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Seed:        r.Config.Seed,
		Tenants:     r.Config.Tenants,
		Schemas:     r.Config.Schemas,
		Requests:    r.Total,
		Concurrency: r.Config.Concurrency,
		HitRatio:    r.Config.HitRatio,
		Mix:         r.Config.Mix.String(),
		DurationMS:  ms(r.Wall),
		Errors:      r.Errors,
		Endpoints:   make(map[string]EndpointReport, len(r.Endpoints)),
	}
	if r.Wall > 0 {
		rep.ThroughputRPS = float64(r.Total) / r.Wall.Seconds()
	}
	for ep, st := range r.Endpoints {
		rep.Endpoints[ep] = EndpointReport{
			Requests:            st.Requests,
			Errors:              st.Errors,
			Hits:                st.Hits,
			Misses:              st.Misses,
			Coalesced:           st.Coalesced,
			Shed:                st.Shed,
			Degraded:            st.Degraded,
			Stale:               st.Stale,
			P50MS:               ms(st.Latency.P50),
			P95MS:               ms(st.Latency.P95),
			P99MS:               ms(st.Latency.P99),
			MaxMS:               ms(st.Latency.Max),
			MeanMS:              ms(st.Latency.Mean),
			HitAllocsPerRequest: st.HitAllocs,
			ServerLatency:       st.ServerLatency,
		}
	}
	return rep
}

// Marshal renders the report as indented, newline-terminated JSON.
func (rep *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseReport reads a LOAD_*.json snapshot.
func ParseReport(data []byte) (*Report, error) {
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("loadgen: parse report: %v", err)
	}
	return &rep, nil
}

// Gate is the SLO regression policy for Compare. Latency on shared
// runners is noisy, so the latency gate is generous and the step that
// runs it is expected to soft-fail; the alloc gate is tight because
// allocations are deterministic.
type Gate struct {
	// P95Factor fails an endpoint whose fresh p95 exceeds baseline ×
	// (1 + P95Factor); default 1.0 (i.e. >2× slower).
	P95Factor float64
	// AllocFactor and AllocSlack fail an endpoint whose fresh hit-path
	// allocs exceed baseline × (1 + AllocFactor) + AllocSlack; defaults
	// 0.5 and 2 — absolute slack so a 0-alloc baseline doesn't make any
	// nonzero measurement a failure.
	AllocFactor float64
	AllocSlack  float64
}

func (g Gate) withDefaults() Gate {
	if g.P95Factor == 0 {
		g.P95Factor = 1.0
	}
	if g.AllocFactor == 0 {
		g.AllocFactor = 0.5
	}
	if g.AllocSlack == 0 {
		g.AllocSlack = 2
	}
	return g
}

// Compare diffs a fresh report against a committed baseline under the
// gate. It returns the human-readable diff rows and the list of gated
// regressions (empty means the gate passes). Endpoints present on only
// one side are reported but never gate.
func Compare(baseline, fresh *Report, g Gate) (rows []string, regressions []string) {
	g = g.withDefaults()
	eps := make(map[string]bool)
	for ep := range baseline.Endpoints {
		eps[ep] = true
	}
	for ep := range fresh.Endpoints {
		eps[ep] = true
	}
	sorted := make([]string, 0, len(eps))
	for ep := range eps {
		sorted = append(sorted, ep)
	}
	sort.Strings(sorted)

	for _, ep := range sorted {
		b, inB := baseline.Endpoints[ep]
		f, inF := fresh.Endpoints[ep]
		switch {
		case !inB:
			rows = append(rows, fmt.Sprintf("%-8s (new endpoint)", ep))
		case !inF:
			rows = append(rows, fmt.Sprintf("%-8s (removed endpoint)", ep))
		default:
			rows = append(rows, fmt.Sprintf(
				"%-8s p95 %8.3f -> %8.3f ms (%+.1f%%)   hit-allocs %5.1f -> %5.1f",
				ep, b.P95MS, f.P95MS, pctDelta(f.P95MS, b.P95MS),
				b.HitAllocsPerRequest, f.HitAllocsPerRequest))
			if b.P95MS > 0 && f.P95MS > b.P95MS*(1+g.P95Factor) {
				regressions = append(regressions, fmt.Sprintf(
					"%s p95 regressed %.3f -> %.3f ms (>%.0f%% gate)",
					ep, b.P95MS, f.P95MS, g.P95Factor*100))
			}
			if b.HitAllocsPerRequest >= 0 && f.HitAllocsPerRequest >= 0 &&
				f.HitAllocsPerRequest > b.HitAllocsPerRequest*(1+g.AllocFactor)+g.AllocSlack {
				regressions = append(regressions, fmt.Sprintf(
					"%s hit-path allocs regressed %.1f -> %.1f /request (gate ×%.1f+%.0f)",
					ep, b.HitAllocsPerRequest, f.HitAllocsPerRequest, 1+g.AllocFactor, g.AllocSlack))
			}
		}
	}
	return rows, regressions
}

// Render prints the report as a human-readable table.
func (rep *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "load run: %d requests, %d clients, hit-ratio %.2f, mix %s, seed %d\n",
		rep.Requests, rep.Concurrency, rep.HitRatio, rep.Mix, rep.Seed)
	fmt.Fprintf(&sb, "wall %.1f ms, %.0f req/s, %d errors\n", rep.DurationMS, rep.ThroughputRPS, rep.Errors)
	eps := make([]string, 0, len(rep.Endpoints))
	for ep := range rep.Endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	fmt.Fprintf(&sb, "%-8s %8s %6s %6s %6s %9s %9s %9s %9s %10s\n",
		"endpoint", "requests", "hits", "miss", "coal", "p50 ms", "p95 ms", "p99 ms", "max ms", "hit-allocs")
	for _, ep := range eps {
		e := rep.Endpoints[ep]
		alloc := "n/a"
		if e.HitAllocsPerRequest >= 0 {
			alloc = fmt.Sprintf("%.1f", e.HitAllocsPerRequest)
		}
		fmt.Fprintf(&sb, "%-8s %8d %6d %6d %6d %9.3f %9.3f %9.3f %9.3f %10s\n",
			ep, e.Requests, e.Hits, e.Misses, e.Coalesced, e.P50MS, e.P95MS, e.P99MS, e.MaxMS, alloc)
	}
	return sb.String()
}

func pctDelta(fresh, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (fresh - base) / base * 100
}
