package loadgen

import (
	"os"
	"strconv"
	"testing"
	"time"

	"vmcloud/internal/server"
)

// TestCoalescingRaceE2E drives the full in-process stack with a
// duplicate-dense mix tuned to keep concurrent identical requests in
// flight: few tenants and schemas shrink the key space and a high hit
// ratio makes repeats land while the leader is still solving. Its job
// is to put the flightGroup leader/follower handoff, the cache-fill
// publication and the zero-copy hit path in front of the race detector
// every CI run — the CI race step runs it explicitly at
// LOADGEN_E2E_REQUESTS=500. The server timeout is raised because the
// race detector serializes enough that queue wait, not solve time,
// dominates; a 503 here would be noise, not signal.
func TestCoalescingRaceE2E(t *testing.T) {
	requests := 500
	if s := os.Getenv("LOADGEN_E2E_REQUESTS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("LOADGEN_E2E_REQUESTS=%q: want a positive integer", s)
		}
		requests = n
	}
	srv := server.New(server.Options{RequestTimeout: 5 * time.Minute})
	cfg := Config{
		Seed:        7,
		Tenants:     2,
		Schemas:     1,
		Requests:    requests,
		Concurrency: 16,
		HitRatio:    0.85,
	}
	res, err := Run(cfg, NewHandlerTarget(srv))
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != cfg.Requests {
		t.Fatalf("total %d, want %d", res.Total, cfg.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors in synthesized traffic", res.Errors)
	}
	var coalesced int
	for ep, st := range res.Endpoints {
		if st.Hits+st.Misses+st.Coalesced != st.Requests {
			t.Errorf("%s: hits %d + misses %d + coalesced %d != requests %d",
				ep, st.Hits, st.Misses, st.Coalesced, st.Requests)
		}
		coalesced += st.Coalesced
	}
	// 16 clients over a 2-tenant single-schema key space at 85%
	// duplicates: repeats of a just-issued body land while its leader
	// is still solving. Zero means the stampede suppression is not
	// engaging at all.
	if coalesced == 0 {
		t.Error("no request was coalesced; singleflight path never exercised")
	}
	t.Logf("requests=%d coalesced=%d", res.Total, coalesced)
}
