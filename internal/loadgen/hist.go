// Package loadgen is the fleet-scale load harness behind cmd/mvcloudbench:
// a deterministic, seedable traffic generator that synthesizes N tenants ×
// M schemas of mixed advise/compare/sweep requests with a configurable
// cache-hit ratio, drives the real internal/server handler stack —
// in-process or over TCP — from a pool of concurrent clients, and reports
// per-endpoint latency percentiles, throughput and allocations per request
// as a machine-readable snapshot (LOAD_<date>.json) that a CI gate can
// diff against a committed baseline.
//
// Every scale claim about the serving layer is measured through this
// package: the solver microbenchmarks in scripts/bench.sh say how fast one
// solve is, loadgen says what a fleet of clients actually experiences —
// tail latency under contention, stampede behaviour, and whether the
// cache-hit fast path is really allocation-free.
package loadgen

import (
	"fmt"
	"sort"
	"time"
)

// Quantile returns the exact q-quantile of the sorted samples using the
// nearest-rank definition: the smallest sample such that at least q·N
// samples are ≤ it. q is clamped to [0,1]; an empty slice yields 0.
// Nearest-rank on the full sorted sample set is deliberate — no
// interpolation, no sketching — so a reported p99 is always a latency
// some request actually experienced.
func Quantile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	// Nearest rank: ceil(q*n), in 1..n.
	rank := int(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// LatencySummary condenses one endpoint's recorded samples.
type LatencySummary struct {
	Count int
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
	Mean  time.Duration
}

// Summarize sorts the samples in place and computes the exact summary.
func Summarize(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var total time.Duration
	for _, d := range samples {
		total += d
	}
	return LatencySummary{
		Count: len(samples),
		P50:   Quantile(samples, 0.50),
		P95:   Quantile(samples, 0.95),
		P99:   Quantile(samples, 0.99),
		Max:   samples[len(samples)-1],
		Mean:  total / time.Duration(len(samples)),
	}
}

// ms renders a duration as fractional milliseconds for the JSON report.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms",
		s.Count, ms(s.P50), ms(s.P95), ms(s.P99), ms(s.Max))
}
