package loadgen

import (
	"os"
	"strconv"
	"testing"
	"time"

	"vmcloud/internal/server"
)

// TestClusterChaosKillAllButOneE2E is the cluster-mode chaos gate the
// CI race step runs: a 3-worker fleet takes a mixed load while 2 of
// the 3 workers are killed mid-run. The contract is the overload-safe
// serving story extended across the topology — zero hung requests,
// zero hard errors (every response is a success, degraded, stale
// serve, or 429+Retry-After), and after the run drains there is not
// one solve goroutine left anywhere: frontend, survivors, or corpses.
// LOADGEN_E2E_REQUESTS scales the run up for soak testing.
func TestClusterChaosKillAllButOneE2E(t *testing.T) {
	requests := 300
	if s := os.Getenv("LOADGEN_E2E_REQUESTS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("LOADGEN_E2E_REQUESTS=%q: want a positive integer", s)
		}
		requests = n
	}
	lc := server.NewLocalCluster(server.LocalClusterOptions{
		Workers:  3,
		Frontend: server.Options{RequestTimeout: time.Minute},
		Worker:   server.Options{RequestTimeout: time.Minute},
		Cluster: server.ClusterOptions{
			Seed: 17,
			// A dead worker refuses instantly, but a fast detector keeps
			// even the first post-kill requests from burning attempts on
			// corpses; the short cooldown bounds Retry-After on the
			// all-down sheds.
			HealthInterval: 20 * time.Millisecond,
			AttemptTimeout: 10 * time.Second,
		},
	})
	defer lc.Close()

	// Kill all but worker-2 once the run is underway: requests in
	// flight on the victims observe a connection reset mid-solve and
	// fail over; later requests find the corpses ejected.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(150 * time.Millisecond)
		lc.KillWorker("worker-0")
		lc.KillWorker("worker-1")
	}()

	cfg := Config{
		Seed:        19,
		Tenants:     4,
		Schemas:     2,
		Requests:    requests,
		Concurrency: 16,
		HitRatio:    0.3,
		Mix:         Mix{Advise: 6, Compare: 1, Sweep: 1},
	}
	res, err := Run(cfg, NewHandlerTarget(lc))
	if err != nil {
		t.Fatal(err)
	}
	<-killed

	// The hard gate: nothing but 200s and 429s ever reached a client.
	// The harness counts any other status — and any hang that outlives
	// its deadline — as an error.
	if res.Errors != 0 {
		t.Fatalf("%d hard errors with 2/3 workers dead (want only success/degraded/stale/429)", res.Errors)
	}
	var served, shed int
	for _, st := range res.Endpoints {
		served += st.Hits + st.Misses + st.Coalesced
		shed += st.Shed
	}
	if served == 0 {
		t.Fatal("nothing served: the surviving worker did not carry its share of the ring")
	}
	if served+shed != res.Total {
		t.Errorf("outcome accounting: served %d + shed %d != total %d", served, shed, res.Total)
	}

	// Whole-topology drain: the killed workers' cancelled solves, the
	// survivors' real ones, and the frontend's forward leaders must all
	// exit.
	deadline := time.Now().Add(10 * time.Second)
	for lc.InflightSolves() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := lc.InflightSolves(); n != 0 {
		t.Fatalf("%d solve goroutines still live across the cluster after drain", n)
	}
	t.Logf("served=%d shed=%d total=%d", served, shed, res.Total)
}

// TestClusterPartitionChaosE2E drives the nastier fault through the
// same harness: one worker is partitioned (forwards hang, not fail)
// mid-run. With a tight per-attempt timeout the frontend converts the
// silence into failovers; the run must still finish with zero hard
// errors and drain clean.
func TestClusterPartitionChaosE2E(t *testing.T) {
	lc := server.NewLocalCluster(server.LocalClusterOptions{
		Workers:  3,
		Frontend: server.Options{RequestTimeout: time.Minute},
		Worker:   server.Options{RequestTimeout: time.Minute},
		Cluster: server.ClusterOptions{
			Seed:           23,
			HealthInterval: 20 * time.Millisecond,
			CheckTimeout:   50 * time.Millisecond,
			AttemptTimeout: 250 * time.Millisecond,
		},
	})
	defer lc.Close()

	go func() {
		time.Sleep(100 * time.Millisecond)
		lc.PartitionWorker("worker-1")
	}()

	cfg := Config{
		Seed:        29,
		Tenants:     3,
		Schemas:     2,
		Requests:    200,
		Concurrency: 8,
		HitRatio:    0.4,
	}
	res, err := Run(cfg, NewHandlerTarget(lc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d hard errors under partition (want silence converted to failover, not 5xx)", res.Errors)
	}
	deadline := time.Now().Add(10 * time.Second)
	for lc.InflightSolves() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := lc.InflightSolves(); n != 0 {
		t.Fatalf("%d solve goroutines still live after drain", n)
	}
}
