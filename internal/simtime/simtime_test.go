package simtime

import (
	"testing"
	"testing/quick"

	"vmcloud/internal/units"
)

func TestIntervalsNoEvents(t *testing.T) {
	tl := Timeline{Initial: 500 * units.GB, Horizon: 12}
	ivs, err := tl.Intervals()
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 {
		t.Fatalf("got %d intervals, want 1", len(ivs))
	}
	if ivs[0].Start != 0 || ivs[0].End != 12 || ivs[0].Size != 500*units.GB {
		t.Errorf("interval = %+v", ivs[0])
	}
}

// The paper's Example 3: 512 GB stored for 12 months, 2048 GB inserted at the
// start of month 8 (i.e. after 7 elapsed months) → intervals [0,7) @512 GB
// and [7,12) @2560 GB.
func TestIntervalsExample3(t *testing.T) {
	tl := Timeline{
		Initial: 512 * units.GB,
		Horizon: 12,
		Events:  []Event{{At: 7, Delta: 2048 * units.GB}},
	}
	ivs, err := tl.Intervals()
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 2 {
		t.Fatalf("got %d intervals, want 2", len(ivs))
	}
	if ivs[0].Length() != 7 || ivs[0].Size != 512*units.GB {
		t.Errorf("first interval = %+v", ivs[0])
	}
	if ivs[1].Length() != 5 || ivs[1].Size != 2560*units.GB {
		t.Errorf("second interval = %+v", ivs[1])
	}
}

func TestIntervalsMergesSimultaneousEvents(t *testing.T) {
	tl := Timeline{
		Initial: 100 * units.GB,
		Horizon: 10,
		Events: []Event{
			{At: 5, Delta: 10 * units.GB},
			{At: 5, Delta: -4 * units.GB},
		},
	}
	ivs, err := tl.Intervals()
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 2 {
		t.Fatalf("got %d intervals, want 2: %+v", len(ivs), ivs)
	}
	if ivs[1].Size != 106*units.GB {
		t.Errorf("merged size = %v, want 106 GB", ivs[1].Size)
	}
}

func TestIntervalsIgnoresEventsAtOrPastHorizon(t *testing.T) {
	tl := Timeline{
		Initial: 10 * units.GB,
		Horizon: 6,
		Events:  []Event{{At: 6, Delta: units.GB}, {At: 100, Delta: units.GB}},
	}
	ivs, err := tl.Intervals()
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0].Size != 10*units.GB {
		t.Errorf("intervals = %+v", ivs)
	}
}

func TestIntervalsEventAtZero(t *testing.T) {
	tl := Timeline{
		Initial: 10 * units.GB,
		Horizon: 6,
		Events:  []Event{{At: 0, Delta: 5 * units.GB}},
	}
	ivs, err := tl.Intervals()
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0].Size != 15*units.GB {
		t.Errorf("intervals = %+v", ivs)
	}
}

func TestIntervalsErrors(t *testing.T) {
	if _, err := (Timeline{Initial: units.GB, Horizon: -1}).Intervals(); err == nil {
		t.Error("negative horizon accepted")
	}
	if _, err := (Timeline{Initial: -units.GB, Horizon: 1}).Intervals(); err == nil {
		t.Error("negative initial size accepted")
	}
	if _, err := (Timeline{Initial: units.GB, Horizon: 5, Events: []Event{{At: -1, Delta: units.GB}}}).Intervals(); err == nil {
		t.Error("pre-period event accepted")
	}
	bad := Timeline{Initial: units.GB, Horizon: 5, Events: []Event{{At: 1, Delta: -2 * units.GB}}}
	if _, err := bad.Intervals(); err == nil {
		t.Error("negative running volume accepted")
	}
}

func TestIntervalsZeroHorizon(t *testing.T) {
	ivs, err := (Timeline{Initial: units.GB, Horizon: 0}).Intervals()
	if err != nil || ivs != nil {
		t.Errorf("got %v, %v; want nil, nil", ivs, err)
	}
}

func TestFinalSize(t *testing.T) {
	tl := Timeline{
		Initial: 512 * units.GB,
		Horizon: 12,
		Events:  []Event{{At: 7, Delta: 2048 * units.GB}, {At: 20, Delta: units.GB}},
	}
	if got := tl.FinalSize(); got != 2560*units.GB {
		t.Errorf("FinalSize = %v, want 2560 GB", got)
	}
}

func TestGBMonths(t *testing.T) {
	tl := Timeline{
		Initial: 512 * units.GB,
		Horizon: 12,
		Events:  []Event{{At: 7, Delta: 2048 * units.GB}},
	}
	got, err := tl.GBMonths()
	if err != nil {
		t.Fatal(err)
	}
	want := 512.0*7 + 2560.0*5
	if got != want {
		t.Errorf("GBMonths = %v, want %v", got, want)
	}
}

// Property: intervals always partition [0, Horizon) — contiguous, ordered,
// covering, regardless of event order.
func TestIntervalsPartitionProperty(t *testing.T) {
	f := func(sizes [4]uint8, ats [4]uint8, horizon uint8) bool {
		h := Months(horizon%24) + 1
		tl := Timeline{Initial: units.DataSize(sizes[0]) * units.GB, Horizon: h}
		for i := 1; i < 4; i++ {
			tl.Events = append(tl.Events, Event{
				At:    Months(ats[i] % 30),
				Delta: units.DataSize(sizes[i]) * units.GB,
			})
		}
		ivs, err := tl.Intervals()
		if err != nil {
			return false
		}
		prev := Months(0)
		for _, iv := range ivs {
			if iv.Start != prev || iv.End <= iv.Start {
				return false
			}
			prev = iv.End
		}
		return prev == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Start: 2, End: 7}
	if iv.Length() != 5 {
		t.Error("Length wrong")
	}
	if !iv.Valid() {
		t.Error("Valid wrong")
	}
	if (Interval{Start: 3, End: 1}).Length() != 0 {
		t.Error("negative length should clamp to 0")
	}
	if (Interval{Start: -1, End: 0}).Valid() {
		t.Error("negative start should be invalid")
	}
	if iv.String() != "[2mo, 7mo)" {
		t.Errorf("String = %q", iv.String())
	}
}
