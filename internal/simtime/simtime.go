// Package simtime models the billing calendar used by the storage cost
// model (Formula 5 of the paper): the storage period is divided into
// intervals during which the stored data size is constant, and each interval
// is billed as size × months × rate.
package simtime

import (
	"fmt"
	"sort"

	"vmcloud/internal/units"
)

// Months measures storage time in (possibly fractional) months, the billing
// unit of 2012-era S3 pricing.
type Months float64

// Interval is a half-open billing interval [Start, End) in months since the
// beginning of the storage period.
type Interval struct {
	Start Months
	End   Months
}

// Length returns End - Start. Negative lengths are reported as zero.
func (iv Interval) Length() Months {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End - iv.Start
}

// Valid reports whether the interval is well-formed (Start ≤ End, Start ≥ 0).
func (iv Interval) Valid() bool { return iv.Start >= 0 && iv.End >= iv.Start }

// String implements fmt.Stringer.
func (iv Interval) String() string {
	return fmt.Sprintf("[%gmo, %gmo)", float64(iv.Start), float64(iv.End))
}

// SizedInterval is an interval with the constant data volume stored in it.
type SizedInterval struct {
	Interval
	Size units.DataSize
}

// Event records a change in stored volume at a point in the storage period,
// e.g. "at the beginning of the eighth month, insert 2 TB" (Example 3).
type Event struct {
	At    Months
	Delta units.DataSize
}

// Timeline describes an entire storage period: the initial volume, a horizon,
// and volume-changing events inside it.
type Timeline struct {
	Initial units.DataSize
	Horizon Months
	Events  []Event
}

// Intervals slices the storage period into maximal constant-size intervals,
// the exact structure Formula 5 sums over. Events outside [0, Horizon) are
// ignored; events at the same instant are merged. The returned intervals
// partition [0, Horizon).
func (tl Timeline) Intervals() ([]SizedInterval, error) {
	if tl.Horizon < 0 {
		return nil, fmt.Errorf("simtime: negative horizon %g", float64(tl.Horizon))
	}
	if tl.Initial < 0 {
		return nil, fmt.Errorf("simtime: negative initial size %v", tl.Initial)
	}
	if tl.Horizon == 0 {
		return nil, nil
	}
	evs := make([]Event, 0, len(tl.Events))
	for _, e := range tl.Events {
		if e.At < 0 {
			return nil, fmt.Errorf("simtime: event before period start at %g months", float64(e.At))
		}
		if e.At >= tl.Horizon {
			continue
		}
		evs = append(evs, e)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })

	var out []SizedInterval
	cur := tl.Initial
	start := Months(0)
	for i := 0; i < len(evs); {
		at := evs[i].At
		var delta units.DataSize
		for i < len(evs) && evs[i].At == at {
			delta += evs[i].Delta
			i++
		}
		if at > start {
			out = append(out, SizedInterval{Interval{start, at}, cur})
			start = at
		}
		cur += delta
		if cur < 0 {
			return nil, fmt.Errorf("simtime: stored volume becomes negative (%v) at %g months", cur, float64(at))
		}
	}
	out = append(out, SizedInterval{Interval{start, tl.Horizon}, cur})
	return out, nil
}

// FinalSize returns the stored volume at the end of the horizon.
func (tl Timeline) FinalSize() units.DataSize {
	s := tl.Initial
	for _, e := range tl.Events {
		if e.At >= 0 && e.At < tl.Horizon {
			s += e.Delta
		}
	}
	return s
}

// GBMonths integrates the timeline: the total of size×duration over all
// intervals, in GB-months. This is the quantity a flat per-GB-month tariff
// would bill.
func (tl Timeline) GBMonths() (float64, error) {
	ivs, err := tl.Intervals()
	if err != nil {
		return 0, err
	}
	var total float64
	for _, iv := range ivs {
		total += iv.Size.GBs() * float64(iv.Length())
	}
	return total, nil
}
