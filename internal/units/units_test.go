package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBinaryMultiples(t *testing.T) {
	// The paper's Example 3 equates 0.5 TB with 512 GB and 2 TB with 2048 GB.
	if TB/GB != 1024 {
		t.Fatalf("TB/GB = %d, want 1024", TB/GB)
	}
	if got := (TB / 2).GBs(); got != 512 {
		t.Errorf("0.5TB = %v GB, want 512", got)
	}
	if got := (2 * TB).GBs(); got != 2048 {
		t.Errorf("2TB = %v GB, want 2048", got)
	}
}

func TestFromGBRoundTrip(t *testing.T) {
	f := func(n int16) bool {
		gb := float64(abs16(n))
		return FromGB(gb).GBs() == gb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs16(n int16) int16 {
	if n < 0 {
		if n == -32768 {
			return 32767
		}
		return -n
	}
	return n
}

func TestString(t *testing.T) {
	cases := []struct {
		in   DataSize
		want string
	}{
		{500 * GB, "500.00 GB"},
		{10 * GB, "10.00 GB"},
		{TB + 512*GB, "1.50 TB"},
		{42 * Byte, "42 B"},
		{3 * MB, "3.00 MB"},
		{-2 * GB, "-2.00 GB"},
		{5 * KB, "5.00 KB"},
		{2 * PB, "2.00 PB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseDataSize(t *testing.T) {
	cases := []struct {
		in      string
		want    DataSize
		wantErr bool
	}{
		{"500GB", 500 * GB, false},
		{"500 gb", 500 * GB, false},
		{"1.5 TB", TB + 512*GB, false},
		{"42", 42, false},
		{"42B", 42, false},
		{"10mb", 10 * MB, false},
		{"", 0, true},
		{"GB", 0, true},
		{"x GB", 0, true},
	}
	for _, c := range cases {
		got, err := ParseDataSize(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseDataSize(%q) expected error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseDataSize(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseDataSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	// String renders two decimals in the next-larger unit, so the round trip
	// is exact only below the unit boundary (e.g. whole GB under 1 TB).
	f := func(n uint16) bool {
		s := DataSize(n%1024) * GB
		got, err := ParseDataSize(s.String())
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBillableHoursPerHour(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want float64
	}{
		{0, 0},
		{-time.Hour, 0},
		{time.Hour, 1},
		{50 * time.Hour, 50},             // Example 2: RoundUp(50) = 50
		{49*time.Hour + time.Minute, 50}, // started hour charged in full
		{time.Nanosecond, 1},
		{12 * time.Minute, 1}, // 0.2 h query → one full billed hour
	}
	for _, c := range cases {
		if got := BillPerHour.BillableHours(c.d); got != c.want {
			t.Errorf("BillPerHour.BillableHours(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestBillableHoursFinerGranularities(t *testing.T) {
	d := 90 * time.Minute
	if got := BillPerMinute.BillableHours(d); got != 1.5 {
		t.Errorf("per-minute 90m = %v, want 1.5", got)
	}
	if got := BillPerSecond.BillableHours(30 * time.Second); got != 30.0/3600 {
		t.Errorf("per-second 30s = %v", got)
	}
	if got := BillExact.BillableHours(45 * time.Minute); got != 0.75 {
		t.Errorf("exact 45m = %v, want 0.75", got)
	}
	// Rounding up at sub-units: 61s billed per minute = 2 minutes.
	if got := BillPerMinute.BillableHours(61 * time.Second); got != 2.0/60 {
		t.Errorf("per-minute 61s = %v, want 2/60", got)
	}
}

// Property: billable hours never undershoot the true duration, and coarser
// granularities never charge less than finer ones. Comparisons allow one
// ULP of float slack: for whole-second durations, d.Hours() and
// ceil(seconds)/3600 can land on adjacent float64 values.
func TestBillableHoursMonotone(t *testing.T) {
	leq := func(a, b float64) bool {
		return a <= b || a-b <= 1e-9*(1+b)
	}
	f := func(secs uint32) bool {
		d := time.Duration(secs%1_000_000) * time.Second
		exact := BillExact.BillableHours(d)
		perSec := BillPerSecond.BillableHours(d)
		perMin := BillPerMinute.BillableHours(d)
		perHour := BillPerHour.BillableHours(d)
		return leq(exact, perSec) && leq(perSec, perMin) && leq(perMin, perHour)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGranularityString(t *testing.T) {
	for g, want := range map[BillingGranularity]string{
		BillPerHour:   "per-hour",
		BillPerMinute: "per-minute",
		BillPerSecond: "per-second",
		BillExact:     "exact",
	} {
		if g.String() != want {
			t.Errorf("%d.String() = %q, want %q", g, g.String(), want)
		}
	}
	if BillingGranularity(99).String() == "" {
		t.Error("unknown granularity should still render")
	}
}

func TestHoursToDuration(t *testing.T) {
	if HoursToDuration(0.2) != 12*time.Minute {
		t.Errorf("0.2h = %v, want 12m", HoursToDuration(0.2))
	}
	if DurationFromHours(1.5) != 90*time.Minute {
		t.Errorf("1.5h = %v, want 90m", DurationFromHours(1.5))
	}
}

func TestDataSizeArithmetic(t *testing.T) {
	a, b := 500*GB, 50*GB
	if a.Add(b) != 550*GB {
		t.Error("Add wrong")
	}
	if a.Sub(b) != 450*GB {
		t.Error("Sub wrong")
	}
	if b.MulInt(2) != 100*GB {
		t.Error("MulInt wrong")
	}
	if (100 * GB).MulFloat(0.5) != 50*GB {
		t.Error("MulFloat wrong")
	}
	if a.Bytes() != int64(500)*1<<30 {
		t.Error("Bytes wrong")
	}
	if (2 * TB).TBs() != 2 {
		t.Error("TBs wrong")
	}
}
