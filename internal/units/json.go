package units

import (
	"encoding/json"
	"fmt"
)

// DataSize marshals as its display string ("500.00 GB") and unmarshals
// from either a size string ("500GB", "1.5 TB") or a bare JSON number of
// bytes. The string form rounds to two decimals, so a marshal/unmarshal
// round trip is for display, not byte-exact accounting.

// MarshalJSON renders the size as a quoted unit string.
func (s DataSize) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses a size string or a JSON number of bytes.
func (s *DataSize) UnmarshalJSON(data []byte) error {
	var str string
	if err := json.Unmarshal(data, &str); err == nil {
		v, err := ParseDataSize(str)
		if err != nil {
			return err
		}
		*s = v
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("units: cannot unmarshal %s as a data size", data)
	}
	*s = DataSize(n)
	return nil
}
