package units

import (
	"encoding/json"
	"testing"
)

func TestDataSizeJSON(t *testing.T) {
	b, err := json.Marshal(500 * GB)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"500.00 GB"` {
		t.Errorf("marshal = %s", b)
	}
	var got DataSize
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != 500*GB {
		t.Errorf("round trip = %v", got)
	}
}

func TestDataSizeUnmarshalForms(t *testing.T) {
	cases := []struct {
		in   string
		want DataSize
	}{
		{`"500GB"`, 500 * GB},
		{`"1.5 TB"`, FromGB(1536)},
		{`1024`, KB},
		{`0`, 0},
	}
	for _, c := range cases {
		var got DataSize
		if err := json.Unmarshal([]byte(c.in), &got); err != nil {
			t.Errorf("%s: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{`"huge"`, `true`, `[1]`} {
		var got DataSize
		if err := json.Unmarshal([]byte(bad), &got); err == nil {
			t.Errorf("%s: accepted as %v", bad, got)
		}
	}
}
