// Package units provides the measurement types shared by the cost models:
// data sizes and billable durations.
//
// The paper (and the 2012 AWS price list it mirrors) quotes sizes in GB and
// TB using binary multiples — its Example 3 treats 0.5 TB as 512 GB — so
// DataSize constants here are powers of 1024. Durations are billed in
// "started" units (every started hour is charged, cf. the paper's Example 2),
// which BillingGranularity models.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// DataSize is a data volume in bytes.
type DataSize int64

// Binary size multiples, matching the paper's GB/TB arithmetic.
const (
	Byte DataSize = 1
	KB   DataSize = 1 << 10
	MB   DataSize = 1 << 20
	GB   DataSize = 1 << 30
	TB   DataSize = 1 << 40
	PB   DataSize = 1 << 50
)

// FromGB builds a DataSize from a (possibly fractional) number of gigabytes.
func FromGB(gb float64) DataSize {
	return DataSize(math.Round(gb * float64(GB)))
}

// GBs returns the size as a float64 number of gigabytes.
func (s DataSize) GBs() float64 { return float64(s) / float64(GB) }

// TBs returns the size as a float64 number of terabytes.
func (s DataSize) TBs() float64 { return float64(s) / float64(TB) }

// Bytes returns the raw byte count.
func (s DataSize) Bytes() int64 { return int64(s) }

// Add returns s + o.
func (s DataSize) Add(o DataSize) DataSize { return s + o }

// Sub returns s - o.
func (s DataSize) Sub(o DataSize) DataSize { return s - o }

// MulInt returns s * n.
func (s DataSize) MulInt(n int64) DataSize { return s * DataSize(n) }

// MulFloat returns s scaled by f, rounded to the nearest byte.
func (s DataSize) MulFloat(f float64) DataSize {
	return DataSize(math.Round(float64(s) * f))
}

// String renders the size with a binary unit suffix, e.g. "500.00 GB".
func (s DataSize) String() string {
	neg := s < 0
	v := s
	if neg {
		v = -v
	}
	var out string
	switch {
	case v >= PB:
		out = fmt.Sprintf("%.2f PB", float64(v)/float64(PB))
	case v >= TB:
		out = fmt.Sprintf("%.2f TB", float64(v)/float64(TB))
	case v >= GB:
		out = fmt.Sprintf("%.2f GB", float64(v)/float64(GB))
	case v >= MB:
		out = fmt.Sprintf("%.2f MB", float64(v)/float64(MB))
	case v >= KB:
		out = fmt.Sprintf("%.2f KB", float64(v)/float64(KB))
	default:
		out = fmt.Sprintf("%d B", v)
	}
	if neg {
		out = "-" + out
	}
	return out
}

// ParseDataSize parses strings like "500GB", "1.5 TB", "10gb", "42" (bytes).
func ParseDataSize(s string) (DataSize, error) {
	orig := s
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := Byte
	for _, u := range []struct {
		suffix string
		m      DataSize
	}{
		{"PB", PB}, {"TB", TB}, {"GB", GB}, {"MB", MB}, {"KB", KB}, {"B", Byte},
	} {
		if strings.HasSuffix(s, u.suffix) {
			mult = u.m
			s = strings.TrimSpace(strings.TrimSuffix(s, u.suffix))
			break
		}
	}
	if s == "" {
		return 0, fmt.Errorf("units: cannot parse size %q", orig)
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("units: cannot parse size %q: %v", orig, err)
	}
	return DataSize(math.Round(f * float64(mult))), nil
}

// MustParseDataSize is ParseDataSize that panics on error, for fixtures.
func MustParseDataSize(s string) DataSize {
	v, err := ParseDataSize(s)
	if err != nil {
		panic(err)
	}
	return v
}

// BillingGranularity selects how a provider rounds compute time before
// charging it. AWS in 2012 charged every started instance-hour; modern
// providers charge per second. Exact is useful for analytical comparisons.
type BillingGranularity int

const (
	// BillPerHour charges every started hour (the paper's RoundUp).
	BillPerHour BillingGranularity = iota
	// BillPerMinute charges every started minute.
	BillPerMinute
	// BillPerSecond charges every started second.
	BillPerSecond
	// BillExact charges the exact fractional duration.
	BillExact
)

// String implements fmt.Stringer.
func (g BillingGranularity) String() string {
	switch g {
	case BillPerHour:
		return "per-hour"
	case BillPerMinute:
		return "per-minute"
	case BillPerSecond:
		return "per-second"
	case BillExact:
		return "exact"
	default:
		return fmt.Sprintf("BillingGranularity(%d)", int(g))
	}
}

// BillableHours returns the number of hours charged for running duration d
// under granularity g. The result is fractional for sub-hour granularities
// (e.g. 90 minutes billed per-minute is 1.5 hours) and an integer number of
// hours for BillPerHour (the paper's "every started hour is charged").
// Negative durations charge zero.
func (g BillingGranularity) BillableHours(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	switch g {
	case BillPerHour:
		return float64(ceilDiv(int64(d), int64(time.Hour)))
	case BillPerMinute:
		return float64(ceilDiv(int64(d), int64(time.Minute))) / 60
	case BillPerSecond:
		return float64(ceilDiv(int64(d), int64(time.Second))) / 3600
	default:
		return d.Hours()
	}
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 {
		q++
	}
	return q
}

// HoursToDuration converts a fractional hour count to a time.Duration.
func HoursToDuration(h float64) time.Duration {
	return time.Duration(math.Round(h * float64(time.Hour)))
}

// DurationFromHours is an alias of HoursToDuration kept for readability at
// call sites that mirror the paper's "t = 0.2 hour" parameters.
func DurationFromHours(h float64) time.Duration { return HoursToDuration(h) }
