// Package client is the retrying HTTP client for a running mvcloudd:
// it posts wire-form JSON to the /v1 endpoints and turns the server's
// overload protocol into polite client behaviour. Admission-control
// sheds (429) are retried after the server's own Retry-After hint,
// transient failures (5xx, transport errors) after seeded, jittered
// exponential backoff — both under a hard cap on attempts and a
// cumulative retry budget, so a persistently overloaded server makes
// the client give up quickly instead of piling on.
package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Default policy: modest, CLI-appropriate persistence.
const (
	DefaultMaxRetries  = 4
	DefaultBaseBackoff = 200 * time.Millisecond
	DefaultMaxBackoff  = 10 * time.Second
	DefaultBudget      = 30 * time.Second
)

// Client posts JSON bodies to BaseURL and retries retryable failures.
// The zero value (plus BaseURL) is usable; fields tune the policy.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying transport; nil means http.DefaultClient.
	HTTP *http.Client
	// MaxRetries caps the retries after the initial attempt; default 4.
	// Negative disables retries entirely.
	MaxRetries int
	// BaseBackoff is the first backoff step (default 200ms); each retry
	// doubles it up to MaxBackoff (default 10s). A server Retry-After
	// hint overrides the computed backoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Budget caps the cumulative time spent waiting between retries
	// (default 30s). A wait that would overrun the remaining budget —
	// e.g. a long Retry-After from a deeply backed-up server — fails
	// fast instead of sleeping through it.
	Budget time.Duration
	// Seed makes the backoff jitter deterministic; same seed, same
	// wait sequence.
	Seed int64
	// AttemptTimeout caps one attempt's wall clock. Zero derives the cap
	// from the context deadline: the remaining time is split evenly over
	// the attempts still available, so one stalled attempt cannot eat
	// the whole deadline before the retry policy ever gets a say.
	// Negative disables per-attempt capping (one attempt may run to the
	// context deadline — the pre-cap behaviour).
	AttemptTimeout time.Duration

	// sleep is the wait hook, replaced in tests; nil means a real
	// context-aware sleep.
	sleep func(ctx context.Context, d time.Duration) error
}

// StatusError is a non-2xx response. Retryable reports whether Do
// would retry it (429 or 5xx).
type StatusError struct {
	Status int
	// Body is the response body, truncated; the server's error messages
	// are one line.
	Body string
	// RetryAfter is the parsed Retry-After hint on a 429, 0 otherwise.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Body)
}

// Retryable reports whether the status is worth retrying: overload
// sheds and server-side failures, but never 4xx request errors.
func (e *StatusError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// Result is one successful response plus the serving metadata a
// cluster frontend forwards alongside the body: the cache disposition
// and the degraded-at-deadline marker.
type Result struct {
	Body []byte
	// XCache is the response's X-Cache header ("hit", "miss",
	// "coalesced", "stale" or empty).
	XCache string
	// Degraded reports X-Degraded: true — the solve stopped at its
	// deadline with the best incumbent.
	Degraded bool
}

// Do posts body as JSON to path and returns the response body,
// retrying per the client's policy. It is safe for concurrent use;
// concurrent calls share the seed but jitter independently.
func (c *Client) Do(ctx context.Context, path string, body []byte) ([]byte, error) {
	res, err := c.DoResult(ctx, path, body)
	if err != nil {
		return nil, err
	}
	return res.Body, nil
}

// DoResult is Do with the response metadata attached.
func (c *Client) DoResult(ctx context.Context, path string, body []byte) (*Result, error) {
	maxRetries := c.MaxRetries
	if maxRetries == 0 {
		maxRetries = DefaultMaxRetries
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	budget := c.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	// xorshift64* keyed on the seed: deterministic jitter without any
	// global randomness, stepped once per retry.
	rng := uint64(c.Seed)*2685821657736338717 + 1

	var slept time.Duration
	for attempt := 0; ; attempt++ {
		actx, cancel := c.attemptContext(ctx, attempt, maxRetries)
		out, err := c.post(actx, path, body)
		cancel()
		if err == nil {
			return out, nil
		}
		var se *StatusError
		if errors.As(err, &se) && !se.Retryable() {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if attempt >= maxRetries {
			return nil, fmt.Errorf("giving up after %d attempts: %w", attempt+1, err)
		}
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		wait := c.backoff(attempt, rng)
		if se != nil && se.RetryAfter > 0 {
			// The server's hint is derived from its actual queue depth
			// and solve latency; trust it over the blind exponential.
			wait = se.RetryAfter
		}
		if slept+wait > budget {
			return nil, fmt.Errorf("retry budget %v exhausted (waited %v, next wait %v): %w",
				budget, slept, wait, err)
		}
		if err := c.doSleep(ctx, wait); err != nil {
			return nil, err
		}
		slept += wait
	}
}

// attemptContext bounds one attempt. An explicit AttemptTimeout wins;
// otherwise the context's remaining time is split evenly across this
// attempt and every retry still allowed, so each attempt gets a fair
// slice instead of the first stalled one consuming the whole deadline.
func (c *Client) attemptContext(ctx context.Context, attempt, maxRetries int) (context.Context, context.CancelFunc) {
	to := c.AttemptTimeout
	if to < 0 {
		return ctx, func() {}
	}
	if to == 0 {
		dl, ok := ctx.Deadline()
		if !ok {
			return ctx, func() {}
		}
		attemptsLeft := maxRetries - attempt + 1
		if attemptsLeft < 1 {
			attemptsLeft = 1
		}
		to = time.Until(dl) / time.Duration(attemptsLeft)
		if to <= 0 {
			// Deadline already passed; let post observe the dead context.
			return ctx, func() {}
		}
	}
	return context.WithTimeout(ctx, to)
}

// backoff is the jittered exponential wait before retry attempt+1:
// uniformly in [step/2, step) where step doubles from BaseBackoff and
// caps at MaxBackoff.
func (c *Client) backoff(attempt int, rng uint64) time.Duration {
	base := c.BaseBackoff
	if base <= 0 {
		base = DefaultBaseBackoff
	}
	maxb := c.MaxBackoff
	if maxb <= 0 {
		maxb = DefaultMaxBackoff
	}
	step := base << uint(attempt)
	if step <= 0 || step > maxb { // <=0 guards shift overflow
		step = maxb
	}
	frac := float64(rng>>11) / float64(1<<53) // uniform [0,1)
	return step/2 + time.Duration(frac*float64(step/2))
}

func (c *Client) doSleep(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// post is one attempt: POST, drain, classify.
func (c *Client) post(ctx context.Context, path string, body []byte) (*Result, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(c.BaseURL, "/")+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{Status: resp.StatusCode, Body: strings.TrimSpace(string(data))}
		if len(se.Body) > 512 {
			se.Body = se.Body[:512] + "..."
		}
		if secs, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64); err == nil && secs > 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
		return nil, se
	}
	return &Result{
		Body:     data,
		XCache:   resp.Header.Get("X-Cache"),
		Degraded: resp.Header.Get("X-Degraded") == "true",
	}, nil
}
