package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSleep records requested waits without sleeping.
type fakeSleep struct{ waits []time.Duration }

func (f *fakeSleep) sleep(_ context.Context, d time.Duration) error {
	f.waits = append(f.waits, d)
	return nil
}

// scripted returns each status in sequence, then 200 "ok" forever.
// 429s carry a Retry-After: 2 hint.
func scripted(t *testing.T, statuses ...int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := calls.Add(1) - 1
		if int(i) < len(statuses) {
			s := statuses[i]
			if s == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "2")
			}
			w.WriteHeader(s)
			w.Write([]byte(http.StatusText(s)))
			return
		}
		w.Write([]byte(`ok`))
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// TestRetryAfterHonored: a shed server's Retry-After hint is what the
// client waits, not the blind exponential.
func TestRetryAfterHonored(t *testing.T) {
	ts, calls := scripted(t, 429, 429)
	fs := &fakeSleep{}
	c := &Client{BaseURL: ts.URL, Seed: 1, sleep: fs.sleep}
	out, err := c.Do(context.Background(), "/v1/advise", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "ok" {
		t.Fatalf("body %q", out)
	}
	if calls.Load() != 3 {
		t.Errorf("%d requests, want 3", calls.Load())
	}
	if len(fs.waits) != 2 || fs.waits[0] != 2*time.Second || fs.waits[1] != 2*time.Second {
		t.Errorf("waits %v, want [2s 2s] from Retry-After", fs.waits)
	}
}

// TestTransientRetriedWithJitteredBackoff: 5xx retries on the seeded
// exponential — deterministic for a seed, in [step/2, step), doubling.
func TestTransientRetriedWithJitteredBackoff(t *testing.T) {
	run := func() []time.Duration {
		ts, _ := scripted(t, 503, 502, 500)
		fs := &fakeSleep{}
		c := &Client{BaseURL: ts.URL, Seed: 42, sleep: fs.sleep}
		if _, err := c.Do(context.Background(), "/v1/advise", nil); err != nil {
			t.Fatal(err)
		}
		return fs.waits
	}
	a, b := run(), run()
	if len(a) != 3 {
		t.Fatalf("waits %v, want 3", a)
	}
	for i, w := range a {
		step := DefaultBaseBackoff << uint(i)
		if w < step/2 || w >= step {
			t.Errorf("wait %d = %v outside [%v, %v)", i, w, step/2, step)
		}
		if w != b[i] {
			t.Errorf("wait %d not deterministic: %v vs %v", i, w, b[i])
		}
	}
}

// TestMaxRetriesGivesUp: a persistently failing server exhausts the
// attempt cap.
func TestMaxRetriesGivesUp(t *testing.T) {
	ts, calls := scripted(t, 503, 503, 503, 503, 503, 503, 503, 503)
	fs := &fakeSleep{}
	c := &Client{BaseURL: ts.URL, MaxRetries: 2, Seed: 1, sleep: fs.sleep}
	_, err := c.Do(context.Background(), "/v1/advise", nil)
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v, want giving-up verdict", err)
	}
	if calls.Load() != 3 {
		t.Errorf("%d requests, want 3 (1 + 2 retries)", calls.Load())
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Status != 503 {
		t.Errorf("cause %v, want wrapped StatusError 503", err)
	}
}

// TestRetryBudgetCapsRetryAfter: a huge Retry-After fails fast instead
// of sleeping through the budget.
func TestRetryBudgetCapsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "60")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	t.Cleanup(ts.Close)
	fs := &fakeSleep{}
	c := &Client{BaseURL: ts.URL, Budget: 90 * time.Second, Seed: 1, sleep: fs.sleep}
	_, err := c.Do(context.Background(), "/v1/advise", nil)
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("err = %v, want budget verdict", err)
	}
	// 60s fits the 90s budget once; the second 60s wait would overrun.
	if calls.Load() != 2 || len(fs.waits) != 1 {
		t.Errorf("%d requests, %d waits; want 2 and 1", calls.Load(), len(fs.waits))
	}
}

// TestBadRequestNeverRetried: 4xx is the caller's bug, not overload.
func TestBadRequestNeverRetried(t *testing.T) {
	ts, calls := scripted(t, 400)
	c := &Client{BaseURL: ts.URL, sleep: func(context.Context, time.Duration) error {
		t.Fatal("slept on a 400")
		return nil
	}}
	_, err := c.Do(context.Background(), "/v1/advise", []byte(`{`))
	var se *StatusError
	if !errors.As(err, &se) || se.Status != 400 || se.Retryable() {
		t.Fatalf("err = %v, want non-retryable StatusError 400", err)
	}
	if calls.Load() != 1 {
		t.Errorf("%d requests, want exactly 1", calls.Load())
	}
}

// TestCancelledContextStopsRetrying: cancellation during backoff
// returns promptly with the context's error.
func TestCancelledContextStopsRetrying(t *testing.T) {
	ts, _ := scripted(t, 503, 503, 503, 503)
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{BaseURL: ts.URL, BaseBackoff: time.Hour, Seed: 1} // real sleep
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err := c.Do(ctx, "/v1/advise", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Errorf("took %v to notice cancellation", d)
	}
}

// TestAttemptTimeoutRecoversFromStall: a server that hangs on the
// first request must not consume the whole context deadline — the
// per-attempt timeout kills the stalled attempt and the retry
// succeeds well inside the deadline.
func TestAttemptTimeoutRecoversFromStall(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Stall the first attempt until the test ends.
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		w.Write([]byte(`ok`))
	}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(release) })

	fs := &fakeSleep{}
	c := &Client{BaseURL: ts.URL, Seed: 1, AttemptTimeout: 100 * time.Millisecond, sleep: fs.sleep}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	t0 := time.Now()
	out, err := c.Do(ctx, "/v1/advise", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "ok" {
		t.Fatalf("body %q", out)
	}
	if calls.Load() != 2 {
		t.Errorf("%d requests, want 2 (stalled + retried)", calls.Load())
	}
	if d := time.Since(t0); d > 10*time.Second {
		t.Errorf("took %v; the stalled attempt consumed the deadline", d)
	}
}

// TestAttemptTimeoutDerivedFromDeadline: with no explicit
// AttemptTimeout, the remaining deadline is split across the attempts
// still allowed, so a stalling server still yields every retry a turn.
func TestAttemptTimeoutDerivedFromDeadline(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		w.Write([]byte(`ok`))
	}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(release) })

	fs := &fakeSleep{}
	c := &Client{BaseURL: ts.URL, Seed: 1, sleep: fs.sleep}
	// 2s deadline, 5 attempts: each attempt is capped around 400ms, so
	// two stalled attempts burn well under the full deadline and the
	// third succeeds.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	out, err := c.Do(ctx, "/v1/advise", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "ok" {
		t.Fatalf("body %q", out)
	}
	if calls.Load() != 3 {
		t.Errorf("%d requests, want 3", calls.Load())
	}
}

// TestDoResultMetadata: DoResult surfaces the X-Cache and X-Degraded
// serving metadata the cluster frontend forwards.
func TestDoResultMetadata(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("X-Degraded", "true")
		w.Write([]byte(`{}`))
	}))
	t.Cleanup(ts.Close)
	c := &Client{BaseURL: ts.URL, Seed: 1}
	res, err := c.DoResult(context.Background(), "/v1/advise", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.XCache != "hit" || !res.Degraded {
		t.Fatalf("metadata = %+v, want XCache=hit Degraded=true", res)
	}
}
