// Package workload models query workloads: aggregation queries pinned to
// lattice points with monthly execution frequencies. It ships the paper's
// experimental workload — ten "total profit per <time level> and <geo
// level>" queries (Section 6.1) — and prefix subsets of 3 and 5 queries.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"vmcloud/internal/lattice"
	"vmcloud/internal/units"
)

// Query is one aggregation query of the workload.
type Query struct {
	// Name labels the query, e.g. "profit per year and country".
	Name string
	// Point is the lattice cuboid the query groups by.
	Point lattice.Point
	// Frequency is the number of executions per billing month (≥ 1).
	Frequency int
}

// Workload is an ordered set of queries.
type Workload struct {
	Queries []Query
}

// Validate checks the workload against a lattice.
func (w Workload) Validate(l *lattice.Lattice) error {
	if len(w.Queries) == 0 {
		return fmt.Errorf("workload: empty workload")
	}
	for i, q := range w.Queries {
		if q.Frequency < 1 {
			return fmt.Errorf("workload: query %d (%s) has frequency %d", i, q.Name, q.Frequency)
		}
		if _, err := l.Node(q.Point); err != nil {
			return fmt.Errorf("workload: query %d (%s): %w", i, q.Name, err)
		}
	}
	return nil
}

// TotalFrequency sums the monthly execution counts.
func (w Workload) TotalFrequency() int {
	n := 0
	for _, q := range w.Queries {
		n += q.Frequency
	}
	return n
}

// ResultBytes estimates the monthly query-result egress volume: each
// execution returns one row per group at the schema's row width (the s(Ri)
// of the paper's Formula 3). Note this uses the cuboid's aggregated group
// count, not its scan size — a base-grain aggregation returns distinct
// (day, department) groups, not raw fact rows.
func (w Workload) ResultBytes(l *lattice.Lattice) (units.DataSize, error) {
	var total units.DataSize
	for _, q := range w.Queries {
		n, err := l.Node(q.Point)
		if err != nil {
			return 0, err
		}
		total += n.ResultSize.MulInt(int64(q.Frequency))
	}
	return total, nil
}

// salesOrder lists the paper's ten queries, ordered so that the 3- and
// 5-query workloads of Section 6.2 are prefixes: coarse, cheap queries
// first, the base-grain query and the grand total last.
var salesOrder = [][2]string{
	{"year", "country"},
	{"month", "country"},
	{"year", "region"},
	{"month", "region"},
	{"day", "country"},
	{"year", "department"},
	{"month", "department"},
	{"day", "region"},
	{"day", "department"},
	{"all", "all"},
}

// Sales builds the n-query sales workload (n ∈ 1..10) over the lattice.
// All frequencies are 1, matching the paper's single-run-per-query setup.
func Sales(l *lattice.Lattice, n int) (Workload, error) {
	if n < 1 || n > len(salesOrder) {
		return Workload{}, fmt.Errorf("workload: sales workload size %d out of range 1..%d", n, len(salesOrder))
	}
	var w Workload
	for _, lv := range salesOrder[:n] {
		p, err := l.PointOf(lv[0], lv[1])
		if err != nil {
			return Workload{}, err
		}
		w.Queries = append(w.Queries, Query{
			Name:      fmt.Sprintf("profit per %s and %s", lv[0], lv[1]),
			Point:     p,
			Frequency: 1,
		})
	}
	return w, nil
}

// Random generates an n-query workload at uniformly random lattice points
// with frequencies in [1, maxFreq], deterministically from the seed. Used
// for randomized end-to-end testing of the selection machinery on
// arbitrary schemas.
func Random(l *lattice.Lattice, n int, maxFreq int, seed int64) (Workload, error) {
	if n < 1 {
		return Workload{}, fmt.Errorf("workload: need at least one query, got %d", n)
	}
	if maxFreq < 1 {
		return Workload{}, fmt.Errorf("workload: maxFreq %d < 1", maxFreq)
	}
	rng := rand.New(rand.NewSource(seed))
	nodes := l.Nodes()
	var w Workload
	for len(w.Queries) < n {
		node := nodes[rng.Intn(len(nodes))]
		w.Queries = append(w.Queries, Query{
			Name:      fmt.Sprintf("rand:%s", l.Name(node.Point)),
			Point:     node.Point,
			Frequency: rng.Intn(maxFreq) + 1,
		})
	}
	return w, nil
}

// ScanTime computes the per-month processing time of the workload when each
// query scans its cheapest answering source among the materialized points
// (Formula 9's t_iV summation): Σ freq × time(scan cheapest).
// timeFor converts a scanned volume into cluster time.
func (w Workload) ScanTime(l *lattice.Lattice, materialized []lattice.Point, timeFor func(units.DataSize) time.Duration) time.Duration {
	var total time.Duration
	for _, q := range w.Queries {
		_, node := l.CheapestAnswering(materialized, q.Point)
		total += time.Duration(int64(q.Frequency)) * timeFor(node.Size)
	}
	return total
}

// PigScript renders the query as a Piglet script over the denormalized
// sales relation — how the paper expressed its workload (Pig Latin on
// Hadoop). The grand-total query uses GROUP ALL.
func (q Query) PigScript(l *lattice.Lattice) (string, error) {
	if len(q.Point) != 2 {
		return "", fmt.Errorf("workload: PigScript supports the 2-dimensional sales schema, point %v", q.Point)
	}
	timeLevel := l.Schema.Dimensions[0].Levels[q.Point[0]].Name
	geoLevel := l.Schema.Dimensions[1].Levels[q.Point[1]].Name
	var keys []string
	if timeLevel != "all" {
		keys = append(keys, timeLevel)
	}
	if geoLevel != "all" {
		keys = append(keys, geoLevel)
	}
	var grouping string
	switch len(keys) {
	case 0:
		// Grand total: Pig 0.7's GROUP rel ALL.
		grouping = "GROUP raw ALL"
	case 1:
		grouping = "GROUP raw BY " + keys[0]
	default:
		grouping = "GROUP raw BY (" + join(keys, ", ") + ")"
	}
	return fmt.Sprintf(`raw = LOAD 'sales' AS (day, month, year, department, region, country, profit);
grp = %s;
out = FOREACH grp GENERATE group, SUM(raw.profit) AS total;
STORE out INTO 'result';
`, grouping), nil
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
