package workload

import (
	"strings"
	"testing"
	"time"

	"vmcloud/internal/lattice"
	"vmcloud/internal/schema"
	"vmcloud/internal/units"
)

func salesLattice(t *testing.T) *lattice.Lattice {
	t.Helper()
	l, err := lattice.New(schema.Sales(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestSalesWorkloadSizes(t *testing.T) {
	l := salesLattice(t)
	for _, n := range []int{1, 3, 5, 10} {
		w, err := Sales(l, n)
		if err != nil {
			t.Fatalf("Sales(%d): %v", n, err)
		}
		if len(w.Queries) != n {
			t.Errorf("Sales(%d) has %d queries", n, len(w.Queries))
		}
		if err := w.Validate(l); err != nil {
			t.Errorf("Sales(%d) invalid: %v", n, err)
		}
	}
	if _, err := Sales(l, 0); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := Sales(l, 11); err == nil {
		t.Error("size 11 accepted")
	}
}

func TestSalesWorkloadPrefixes(t *testing.T) {
	l := salesLattice(t)
	w3, _ := Sales(l, 3)
	w10, _ := Sales(l, 10)
	for i, q := range w3.Queries {
		if q.Name != w10.Queries[i].Name || !q.Point.Equal(w10.Queries[i].Point) {
			t.Errorf("query %d differs between 3- and 10-query workloads", i)
		}
	}
	// Q1 is the paper's running-example query.
	if w10.Queries[0].Name != "profit per year and country" {
		t.Errorf("Q1 = %q", w10.Queries[0].Name)
	}
	// The last two are the base-grain query and the grand total.
	base := w10.Queries[8].Point
	if base[0] != 0 || base[1] != 0 {
		t.Errorf("Q9 point = %v, want base", base)
	}
	apex := w10.Queries[9].Point
	if !apex.Equal(l.Apex()) {
		t.Errorf("Q10 point = %v, want apex", apex)
	}
}

func TestValidate(t *testing.T) {
	l := salesLattice(t)
	if err := (Workload{}).Validate(l); err == nil {
		t.Error("empty workload accepted")
	}
	w, _ := Sales(l, 3)
	w.Queries[0].Frequency = 0
	if err := w.Validate(l); err == nil {
		t.Error("zero frequency accepted")
	}
	w, _ = Sales(l, 3)
	w.Queries[0].Point = lattice.Point{99, 0}
	if err := w.Validate(l); err == nil {
		t.Error("bad point accepted")
	}
}

func TestTotalFrequency(t *testing.T) {
	l := salesLattice(t)
	w, _ := Sales(l, 3)
	if w.TotalFrequency() != 3 {
		t.Errorf("TotalFrequency = %d", w.TotalFrequency())
	}
	w.Queries[1].Frequency = 5
	if w.TotalFrequency() != 7 {
		t.Errorf("TotalFrequency = %d", w.TotalFrequency())
	}
}

func TestResultBytes(t *testing.T) {
	l := salesLattice(t)
	w, _ := Sales(l, 1) // year×country
	got, err := w.ResultBytes(l)
	if err != nil {
		t.Fatal(err)
	}
	node, _ := l.Node(w.Queries[0].Point)
	if got != node.Size {
		t.Errorf("ResultBytes = %v, want %v", got, node.Size)
	}
	w.Queries[0].Frequency = 3
	got, _ = w.ResultBytes(l)
	if got != node.Size.MulInt(3) {
		t.Errorf("ResultBytes with freq 3 = %v", got)
	}
	bad := Workload{Queries: []Query{{Point: lattice.Point{99, 0}, Frequency: 1}}}
	if _, err := bad.ResultBytes(l); err == nil {
		t.Error("bad point accepted")
	}
}

func TestScanTime(t *testing.T) {
	l := salesLattice(t)
	w, _ := Sales(l, 3)
	perGB := func(s units.DataSize) time.Duration {
		return time.Duration(s.GBs() * float64(time.Hour))
	}
	noViews := w.ScanTime(l, nil, perGB)
	if noViews <= 0 {
		t.Fatal("no-view scan time should be positive")
	}
	// Materializing month×country (answers Q1 and Q2) must cut time.
	mc, _ := l.PointOf("month", "country")
	withView := w.ScanTime(l, []lattice.Point{mc}, perGB)
	if withView >= noViews {
		t.Errorf("view did not reduce scan time: %v vs %v", withView, noViews)
	}
	// Frequencies multiply.
	w.Queries[0].Frequency = 10
	if w.ScanTime(l, nil, perGB) <= noViews {
		t.Error("higher frequency should increase scan time")
	}
}

func TestPigScript(t *testing.T) {
	l := salesLattice(t)
	w, _ := Sales(l, 10)
	// Two-key query.
	s, err := w.Queries[0].PigScript(l)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "GROUP raw BY (year, country)") {
		t.Errorf("Q1 script:\n%s", s)
	}
	// Partially-ALL query: day×country is two keys; check a one-key query
	// like year×all is rendered without parens.
	yearAll := Query{Point: mustPoint(t, l, "year", "all"), Frequency: 1}
	s, err = yearAll.PigScript(l)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "GROUP raw BY year;") {
		t.Errorf("year×all script:\n%s", s)
	}
	// Grand total uses Pig's GROUP ALL.
	s, err = w.Queries[9].PigScript(l)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "GROUP raw ALL;") {
		t.Errorf("apex script:\n%s", s)
	}
	bad := Query{Point: lattice.Point{0}}
	if _, err := bad.PigScript(l); err == nil {
		t.Error("1-dim point accepted")
	}
}

func mustPoint(t *testing.T, l *lattice.Lattice, names ...string) lattice.Point {
	t.Helper()
	p, err := l.PointOf(names...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
