package workload

import (
	"encoding/json"
	"testing"

	"vmcloud/internal/lattice"
	"vmcloud/internal/schema"
)

func testLattice(t *testing.T) *lattice.Lattice {
	t.Helper()
	l, err := lattice.New(schema.Sales(), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestWorkloadJSONRoundTrip(t *testing.T) {
	l := testLattice(t)
	w, err := Sales(l, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 7
	}
	wire := w.JSON(l)
	if len(wire) != 5 {
		t.Fatalf("wire len = %d", len(wire))
	}
	if wire[0].Levels[0] != "year" || wire[0].Levels[1] != "country" {
		t.Errorf("first query levels = %v", wire[0].Levels)
	}
	if wire[0].Frequency != 7 {
		t.Errorf("frequency = %d", wire[0].Frequency)
	}
	got, err := FromJSON(l, wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Queries) != len(w.Queries) {
		t.Fatalf("round trip lost queries: %d vs %d", len(got.Queries), len(w.Queries))
	}
	for i := range got.Queries {
		if !got.Queries[i].Point.Equal(w.Queries[i].Point) {
			t.Errorf("query %d point %v != %v", i, got.Queries[i].Point, w.Queries[i].Point)
		}
		if got.Queries[i].Frequency != w.Queries[i].Frequency {
			t.Errorf("query %d frequency %d != %d", i, got.Queries[i].Frequency, w.Queries[i].Frequency)
		}
	}
}

func TestFromJSONForms(t *testing.T) {
	l := testLattice(t)
	// Levels win over point; a bare point works; frequency defaults to 1;
	// names are filled from the lattice.
	w, err := FromJSON(l, []QueryJSON{
		{Levels: []string{"year", "country"}, Point: []int{0, 0}},
		{Point: []int{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := l.PointOf("year", "country")
	if !w.Queries[0].Point.Equal(want) {
		t.Errorf("levels did not win: %v", w.Queries[0].Point)
	}
	if w.Queries[1].Frequency != 1 {
		t.Errorf("default frequency = %d", w.Queries[1].Frequency)
	}
	if w.Queries[1].Name == "" {
		t.Error("name not filled")
	}
}

func TestFromJSONErrors(t *testing.T) {
	l := testLattice(t)
	cases := map[string][]QueryJSON{
		"empty workload":     {},
		"no coordinates":     {{Name: "mystery"}},
		"unknown level":      {{Levels: []string{"eon", "country"}}},
		"wrong level count":  {{Levels: []string{"year"}}},
		"point out of range": {{Point: []int{99, 0}}},
		"negative frequency": {{Point: []int{0, 0}, Frequency: -2}},
	}
	for name, qs := range cases {
		if _, err := FromJSON(l, qs); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestQueryJSONWire(t *testing.T) {
	b, err := json.Marshal(QueryJSON{Levels: []string{"year", "country"}, Frequency: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"levels":["year","country"],"frequency":3}`
	if string(b) != want {
		t.Errorf("marshal = %s, want %s", b, want)
	}
}
