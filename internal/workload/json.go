package workload

import (
	"fmt"

	"vmcloud/internal/lattice"
)

// QueryJSON is the wire form of a Query. A query's cuboid can be named
// either by per-dimension level names ("year","country") or by the raw
// lattice point ([2,3]); when both are present the levels win. Encoding
// always emits both so responses are self-describing.
type QueryJSON struct {
	Name      string   `json:"name,omitempty"`
	Levels    []string `json:"levels,omitempty"`
	Point     []int    `json:"point,omitempty"`
	Frequency int      `json:"frequency,omitempty"`
}

// JSON renders the workload in wire form, resolving level names against
// the lattice's schema.
func (w Workload) JSON(l *lattice.Lattice) []QueryJSON {
	out := make([]QueryJSON, len(w.Queries))
	for i, q := range w.Queries {
		qj := QueryJSON{Name: q.Name, Point: q.Point, Frequency: q.Frequency}
		if len(q.Point) == len(l.Schema.Dimensions) {
			levels := make([]string, len(q.Point))
			ok := true
			for d, lv := range q.Point {
				if lv < 0 || lv >= l.Schema.Dimensions[d].NumLevels() {
					ok = false
					break
				}
				levels[d] = l.Schema.Dimensions[d].Levels[lv].Name
			}
			if ok {
				qj.Levels = levels
			}
		}
		out[i] = qj
	}
	return out
}

// FromJSON resolves a wire workload against a lattice and validates it.
// Frequencies default to 1.
func FromJSON(l *lattice.Lattice, qs []QueryJSON) (Workload, error) {
	if len(qs) == 0 {
		return Workload{}, fmt.Errorf("workload: empty workload")
	}
	var w Workload
	for i, qj := range qs {
		var p lattice.Point
		var err error
		switch {
		case len(qj.Levels) > 0:
			p, err = l.PointOf(qj.Levels...)
		case len(qj.Point) > 0:
			p = lattice.Point(qj.Point).Clone()
		default:
			err = fmt.Errorf("no levels or point given")
		}
		if err == nil {
			_, err = l.Node(p) // validate before naming
		}
		if err != nil {
			return Workload{}, fmt.Errorf("workload: query %d: %w", i, err)
		}
		q := Query{Name: qj.Name, Point: p, Frequency: qj.Frequency}
		if q.Frequency == 0 {
			q.Frequency = 1
		}
		if q.Name == "" {
			q.Name = l.Name(p)
		}
		w.Queries = append(w.Queries, q)
	}
	if err := w.Validate(l); err != nil {
		return Workload{}, err
	}
	return w, nil
}
