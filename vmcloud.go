// Package vmcloud is a Go reproduction of "Cost Models for View
// Materialization in the Cloud" (Nguyen, d'Orazio, Bimonte, Darmont —
// EDBT/ICDT DanaC workshop, 2012).
//
// It provides monetary cost models for running analytical workloads on
// pay-as-you-go clouds (compute instance-hours, tiered storage, tiered
// egress) and a materialized-view advisor that solves the paper's three
// optimization scenarios over a star-schema cuboid lattice:
//
//   - MV1: minimize workload response time under a budget limit,
//   - MV2: minimize the monetary bill under a response-time limit,
//   - MV3: minimize the weighted tradeoff α·T + (1−α)·C,
//
// each solved as a 0/1 knapsack by dynamic programming over candidate
// views produced by a greedy benefit-per-space pre-selection — or, for
// lattices too large for the linearization to stay honest, by seedable
// metaheuristic search (hill climbing + simulated annealing) against
// the exact cost evaluator (AdvisorConfig.Solver = SolverSearch).
//
// Quick start:
//
//	l, _ := vmcloud.NewLattice(vmcloud.SalesSchema(), 200_000_000)
//	w, _ := vmcloud.SalesWorkload(l, 10)
//	adv, _ := vmcloud.NewAdvisor(vmcloud.AdvisorConfig{Workload: w})
//	rec, _ := adv.AdviseBudget(vmcloud.Dollars(5))
//	fmt.Println(rec.Render())
//
// The facade re-exports the supported surface of the internal packages;
// see the examples/ directory for runnable programs and DESIGN.md for the
// system inventory.
package vmcloud

import (
	"vmcloud/internal/compare"
	"vmcloud/internal/core"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/schema"
	"vmcloud/internal/units"
	"vmcloud/internal/workload"
)

// Money is an exact currency amount in micro-dollars.
type Money = money.Money

// Dollars converts a float dollar amount to Money.
//
//mvlint:allow moneyfloat -- public facade input boundary: callers hand us float dollars by design
func Dollars(d float64) Money { return money.FromDollars(d) }

// ParseMoney parses "$1.08"-style strings.
func ParseMoney(s string) (Money, error) { return money.Parse(s) }

// DataSize is a data volume in bytes; GB and TB are binary multiples.
type DataSize = units.DataSize

// Data size constants.
const (
	MB = units.MB
	GB = units.GB
	TB = units.TB
)

// Provider is a cloud service provider tariff (compute, storage, egress).
type Provider = pricing.Provider

// AWS2012 returns the tariff fixture matching the paper's Tables 2–4.
func AWS2012() Provider { return pricing.AWS2012() }

// Providers returns every built-in tariff by name.
func Providers() map[string]Provider { return pricing.Catalog() }

// Schema describes a star schema with dimension hierarchies.
type Schema = schema.Schema

// SalesSchema returns the paper's supply-chain sales schema (Table 1).
func SalesSchema() *Schema { return schema.Sales() }

// SyntheticSchema builds a deterministic star schema with dims
// dimensions and levels hierarchy levels per dimension (including ALL),
// inducing a levels^dims-cuboid lattice — the stress setting the search
// solver exists for. SyntheticSchema(4, 4) is the 256-cuboid lattice of
// the large-schema experiments.
func SyntheticSchema(dims, levels int) (*Schema, error) { return schema.Synthetic(dims, levels) }

// Lattice is the cuboid lattice of a schema.
type Lattice = lattice.Lattice

// Point identifies one cuboid (one hierarchy level per dimension).
type Point = lattice.Point

// NewLattice builds the lattice of a schema at a fact-table row count.
func NewLattice(s *Schema, factRows int64) (*Lattice, error) {
	return lattice.New(s, factRows)
}

// Workload is a set of aggregation queries with monthly frequencies.
type Workload = workload.Workload

// Query is one workload query.
type Query = workload.Query

// SalesWorkload builds the paper's n-query sales workload (n ∈ 1..10).
func SalesWorkload(l *Lattice, n int) (Workload, error) {
	return workload.Sales(l, n)
}

// RandomWorkload generates an n-query workload at uniformly random
// lattice points with frequencies in [1, maxFreq], deterministically
// from the seed — the workload generator the large-schema walkthrough
// and benchmarks use.
func RandomWorkload(l *Lattice, n, maxFreq int, seed int64) (Workload, error) {
	return workload.Random(l, n, maxFreq, seed)
}

// AdvisorConfig configures an advisory session; zero values select the
// paper's experimental defaults (AWS 2012 tariff, 5 small instances,
// ≈10 GB sales dataset, monthly billing, knapsack solver).
type AdvisorConfig = core.Config

// Solver names accepted by AdvisorConfig.Solver and
// CompareRequest.Solver: the paper's linearized knapsack DP (default),
// the exact-evaluator metaheuristic search engine, or automatic
// selection by candidate-pool size.
const (
	SolverKnapsack = core.SolverKnapsack
	SolverSearch   = core.SolverSearch
	SolverAuto     = core.SolverAuto
)

// Advisor recommends view sets under the paper's three scenarios.
type Advisor = core.Advisor

// Recommendation is a solved scenario with its exact bill.
type Recommendation = core.Recommendation

// ParetoPoint is one point of the time/cost frontier.
type ParetoPoint = core.ParetoPoint

// NewAdvisor wires an advisory session.
func NewAdvisor(cfg AdvisorConfig) (*Advisor, error) { return core.New(cfg) }

// CompareRequest describes a cross-provider comparison: the advisory
// problem fanned out across provider × instance type × cluster size
// configurations. Zero values select the paper's defaults; an empty
// Providers list compares the full built-in catalog.
type CompareRequest = compare.Request

// Comparison is the merged cross-provider report: the cost/time matrix,
// per-scenario winners, the global Pareto frontier and the budget
// break-even sweep. ComparisonJSON (via Comparison.JSON) is its wire
// form, as served by mvcloudd's POST /v1/compare.
type Comparison = compare.Comparison

// ComparisonJSON is the wire form of a Comparison.
type ComparisonJSON = compare.ComparisonJSON

// CompareKey identifies one compared configuration.
type CompareKey = compare.Key

// Compare solves every requested configuration on a bounded worker pool
// and returns the deterministic, ranked comparison.
func Compare(req CompareRequest) (*Comparison, error) { return compare.Run(req) }

// SweepRequest describes a tariff-grid sweep: a single objective (mv1,
// mv2 or mv3) re-priced across provider × instance type × fleet size
// cells over one workload. The grid shares one pricing-invariant
// structure (lattice, candidates, answering lists); each cell costs only
// a tariff re-bind — the structure-sharing comparison kernel.
type SweepRequest = compare.SweepRequest

// TariffSweep is the solved grid: every cell's exact recommendation and
// decomposed bill, plus the winning configuration. SweepJSON (via
// TariffSweep.JSON) is its wire form, as served by mvcloudd's POST
// /v1/sweep.
type TariffSweep = compare.Sweep

// SweepJSON is the wire form of a TariffSweep.
type SweepJSON = compare.SweepJSON

// Sweep re-prices the single-objective grid on a bounded worker pool and
// returns the deterministic sweep with its winner.
func Sweep(req SweepRequest) (*TariffSweep, error) { return compare.RunSweep(req) }
