package vmcloud

import (
	"math"
	"testing"
	"time"

	"vmcloud/internal/cluster"
	"vmcloud/internal/datagen"
	"vmcloud/internal/engine"
	"vmcloud/internal/pricing"
	"vmcloud/internal/scaling"
	"vmcloud/internal/units"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// TestMeasuredCalibration closes the loop between the execution substrate
// and the analytical cost model: the workload runs for real on a 1/1000-
// scale generated dataset, the cluster simulator converts measured bytes
// into cloud hours via DataScale, and the result must agree with the
// analytical estimator's prediction for the full-size dataset — the whole
// premise of client-side view selection.
func TestMeasuredCalibration(t *testing.T) {
	const (
		localRows = 200_000
		fullRows  = 200_000_000
		scale     = float64(fullRows) / float64(localRows)
	)
	ds, err := datagen.GenerateSales(datagen.Config{Rows: localRows, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := engine.NewExecutor(ds)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := cluster.New(pricing.AWS2012(), "small", 5)
	if err != nil {
		t.Fatal(err)
	}
	cl.DataScale = scale

	// Measured: run the ten queries against the base table.
	w, err := workload.Sales(ex.Lat, 10)
	if err != nil {
		t.Fatal(err)
	}
	ex.ResetStats()
	for _, q := range w.Queries {
		if _, err := ex.Answer(q.Point, engine.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	measured := cl.TimeForStats(ex.CumulativeStats())

	// Analytical: the estimator's prediction at full scale on an identical
	// but unscaled cluster (no per-job overhead on either path).
	fullLat, err := NewLattice(SalesSchema(), fullRows)
	if err != nil {
		t.Fatal(err)
	}
	fullW, err := SalesWorkload(fullLat, 10)
	if err != nil {
		t.Fatal(err)
	}
	analyticCl, err := cluster.New(pricing.AWS2012(), "small", 5)
	if err != nil {
		t.Fatal(err)
	}
	analytic := fullW.ScanTime(fullLat, nil, analyticCl.TimeFor)

	// The two must agree closely: both are 10 full scans of ~10 GB.
	ratio := float64(measured) / float64(analytic)
	if math.Abs(ratio-1) > 0.05 {
		t.Errorf("measured %v vs analytic %v (ratio %.3f), want within 5%%",
			measured, analytic, ratio)
	}
}

// TestMeasuredViewSpeedup verifies the same calibration WITH views: the
// measured speedup from materializing the advisor's candidates approaches
// the analytic prediction.
func TestMeasuredViewSpeedup(t *testing.T) {
	ds, err := datagen.GenerateSales(datagen.Config{Rows: 100_000, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := engine.NewExecutor(ds)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Sales(ex.Lat, 10)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := views.GenerateCandidates(ex.Lat, w, 8)
	if err != nil {
		t.Fatal(err)
	}

	// Measured: bytes scanned without views...
	ex.ResetStats()
	for _, q := range w.Queries {
		if _, err := ex.Answer(q.Point, engine.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	withoutBytes := ex.CumulativeStats().BytesScanned

	// ...then with the candidates materialized (materialization excluded
	// from the query-path measurement).
	for _, c := range cands {
		if _, err := ex.Materialize(c.Point); err != nil {
			t.Fatal(err)
		}
	}
	ex.ResetStats()
	for _, q := range w.Queries {
		if _, err := ex.Answer(q.Point, engine.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	withBytes := ex.CumulativeStats().BytesScanned

	measuredReduction := 1 - float64(withBytes)/float64(withoutBytes)
	if measuredReduction < 0.5 {
		t.Errorf("views only cut scanned bytes by %.1f%%, expected a large reduction", measuredReduction*100)
	}

	// Analytic prediction of the same reduction at local scale.
	base := w.ScanTime(ex.Lat, nil, linearTime)
	withViews := w.ScanTime(ex.Lat, views.Points(cands), linearTime)
	analyticReduction := 1 - float64(withViews)/float64(base)
	if math.Abs(measuredReduction-analyticReduction) > 0.15 {
		t.Errorf("measured reduction %.3f vs analytic %.3f", measuredReduction, analyticReduction)
	}
}

// linearTime is a unit-throughput volume→time stand-in for ratio checks.
func linearTime(s units.DataSize) time.Duration {
	return time.Duration(s)
}

// TestScaleOutFacade exercises the scaling sweep through realistic knobs.
func TestScaleOutFacade(t *testing.T) {
	l, err := NewLattice(SalesSchema(), 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := SalesWorkload(l, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 30
	}
	opts, err := scaling.SweepTypes(
		scaling.Config{FleetSizes: []int{2, 5}},
		[]string{"small", "large"},
		w,
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 8 { // 2 types × 2 sizes × (with/without)
		t.Fatalf("options = %d, want 8", len(opts))
	}
	// Large instances are 4× the price for 4× the ECU: faster wall clock.
	var smallT, largeT time.Duration
	for _, o := range opts {
		if o.Instances == 2 && !o.WithViews {
			switch o.InstanceType {
			case "small":
				smallT = o.Time
			case "large":
				largeT = o.Time
			}
		}
	}
	if largeT >= smallT {
		t.Errorf("large instances not faster: %v vs %v", largeT, smallT)
	}
	if _, ok := scaling.CheapestTypedMeeting(opts, time.Nanosecond); ok {
		t.Error("impossible limit met")
	}
	best, ok := scaling.CheapestTypedMeeting(opts, 1000*time.Hour)
	if !ok {
		t.Fatal("generous limit unmet")
	}
	if best.InstanceType == "" {
		t.Error("typed option lost its type")
	}
	if _, err := scaling.SweepTypes(scaling.Config{}, nil, w); err == nil {
		t.Error("empty type list accepted")
	}
}
