#!/usr/bin/env bash
# bench.sh — run every benchmark under internal/... and emit a single
# JSON summary (BENCH_<date>.json by default) so the benchmark
# trajectory can be tracked commit over commit.
#
# Usage:
#   ./scripts/bench.sh                # full run, writes BENCH_YYYY-MM-DD.json
#   BENCHTIME=10x ./scripts/bench.sh  # shorter per-benchmark budget
#   OUT=/tmp/bench.json ./scripts/bench.sh
#
#   ./scripts/bench.sh --compare [baseline.json]
#       Run fresh (to a temp file unless OUT is set) and diff against the
#       baseline — by default the latest committed BENCH_*.json. Prints
#       per-benchmark ns/op and allocs/op deltas and exits non-zero when
#       any search/optimizer/server/compare/mapreduce benchmark regresses
#       >25% in ns/op or >50% in allocs/op (emitting ::warning::
#       annotations for CI). The allocs gate is what locks in the
#       comparison kernel's structure-sharing and the sort-free shuffle:
#       those wins die by allocation creep long before ns/op notices.
#
# The JSON shape:
#   {"date":"...","go":"...","goos":"...","goarch":"...","benchtime":"...",
#    "benchmarks":[{"package":"...","name":"...","iterations":N,
#                   "ns_per_op":F,"bytes_per_op":F,"allocs_per_op":F}, ...]}
set -euo pipefail
cd "$(dirname "$0")/.."

COMPARE=0
BASELINE=""
while [ $# -gt 0 ]; do
  case "$1" in
    --compare)
      COMPARE=1
      if [ $# -gt 1 ] && [ "${2#--}" = "$2" ]; then
        BASELINE="$2"
        shift
      fi
      ;;
    *)
      echo "bench.sh: unknown argument $1" >&2
      exit 2
      ;;
  esac
  shift
done

BENCHTIME="${BENCHTIME:-100x}"
TMP_OUT=""
if [ "$COMPARE" = 1 ]; then
  if [ -z "${OUT:-}" ]; then
    OUT="$(mktemp /tmp/bench_compare.XXXXXX.json)"
    TMP_OUT="$OUT"
  fi
else
  OUT="${OUT:-BENCH_$(date +%F).json}"
fi

raw="$(mktemp)"
trap 'rm -f "$raw" ${TMP_OUT:+"$TMP_OUT"}' EXIT

go test -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" ./internal/... | tee "$raw" >&2

awk -v date="$(date +%F)" \
    -v gover="$(go env GOVERSION)" \
    -v goos="$(go env GOOS)" \
    -v goarch="$(go env GOARCH)" \
    -v benchtime="$BENCHTIME" '
BEGIN {
  printf "{\"date\":\"%s\",\"go\":\"%s\",\"goos\":\"%s\",\"goarch\":\"%s\",\"benchtime\":\"%s\",\"benchmarks\":[", date, gover, goos, goarch, benchtime
  n = 0
  pkg = ""
}
$1 == "pkg:" { pkg = $2 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  iters = $2
  ns = ""; bytes = ""; allocs = ""
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op") ns = $i
    if ($(i+1) == "B/op") bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
  }
  if (ns == "") next
  if (n++) printf ","
  printf "{\"package\":\"%s\",\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s", pkg, name, iters, ns
  if (bytes != "") printf ",\"bytes_per_op\":%s", bytes
  if (allocs != "") printf ",\"allocs_per_op\":%s", allocs
  printf "}"
}
END { print "]}" }
' "$raw" > "$OUT"

count="$(grep -o '"name"' "$OUT" | wc -l | tr -d ' ')"
echo "wrote $OUT ($count benchmarks)" >&2

if [ "$COMPARE" = 0 ]; then
  exit 0
fi

if [ -z "$BASELINE" ]; then
  # Latest committed summary, never the file this run just wrote — a
  # fresh-vs-itself diff would make the gate vacuously green.
  BASELINE="$(ls BENCH_*.json 2>/dev/null | grep -vxF "$(basename "$OUT")" | sort | tail -1 || true)"
fi
if [ -z "$BASELINE" ] || [ ! -f "$BASELINE" ]; then
  echo "bench.sh --compare: no committed BENCH_*.json baseline found" >&2
  exit 2
fi
echo "comparing against $BASELINE" >&2

python3 - "$BASELINE" "$OUT" <<'PYEOF'
import json, sys

GATED = ("internal/search", "internal/optimizer", "internal/server",
         "internal/compare", "internal/mapreduce")
THRESHOLD = 0.25        # >25% ns/op regression of a gated benchmark fails
ALLOC_THRESHOLD = 0.50  # >50% allocs/op regression of a gated benchmark fails

def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {(b["package"], b["name"]): b for b in doc["benchmarks"]}

base = load(sys.argv[1])
fresh = load(sys.argv[2])

def delta(new, old):
    if not old:
        return float("inf")
    return (new - old) / old

rows, regressions = [], []
for key in sorted(set(base) | set(fresh)):
    pkg, name = key
    b, f = base.get(key), fresh.get(key)
    if b is None:
        rows.append((pkg, name, "(new)", "", ""))
        continue
    if f is None:
        rows.append((pkg, name, "(removed)", "", ""))
        continue
    dns = delta(f["ns_per_op"], b["ns_per_op"])
    dal = delta(f.get("allocs_per_op", 0), b.get("allocs_per_op", 0))
    gated = any(pkg.endswith(g) for g in GATED)
    if gated and dns > THRESHOLD:
        regressions.append((pkg, name, "ns/op", dns, THRESHOLD))
    if gated and b.get("allocs_per_op") and dal > ALLOC_THRESHOLD:
        regressions.append((pkg, name, "allocs/op", dal, ALLOC_THRESHOLD))
    rows.append((pkg, name,
                 f"{b['ns_per_op']:.0f} -> {f['ns_per_op']:.0f} ns/op ({dns:+.1%})",
                 f"{b.get('allocs_per_op', 0):.0f} -> {f.get('allocs_per_op', 0):.0f} allocs/op"
                 + (f" ({dal:+.1%})" if dal != float("inf") else ""),
                 "GATED" if gated else ""))

wp = max(len(r[0]) for r in rows)
wn = max(len(r[1]) for r in rows)
for pkg, name, ns, allocs, tag in rows:
    print(f"{pkg:<{wp}}  {name:<{wn}}  {ns:<42} {allocs:<32} {tag}")

if regressions:
    for pkg, name, metric, d, thr in regressions:
        print(f"::warning::{pkg} {name} {metric} regressed {d:+.1%} vs baseline (>{thr:.0%} gate)")
    print(f"bench.sh --compare: {len(regressions)} gated regression(s)", file=sys.stderr)
    sys.exit(1)
print("bench.sh --compare: no gated regression (ns/op > 25% or allocs/op > 50%)", file=sys.stderr)
PYEOF
