#!/usr/bin/env bash
# bench.sh — run every benchmark under internal/... and emit a single
# JSON summary (BENCH_<date>.json by default) so the benchmark
# trajectory can be tracked commit over commit.
#
# Usage:
#   ./scripts/bench.sh                # full run, writes BENCH_YYYY-MM-DD.json
#   BENCHTIME=10x ./scripts/bench.sh  # shorter per-benchmark budget
#   OUT=/tmp/bench.json ./scripts/bench.sh
#
# The JSON shape:
#   {"date":"...","go":"...","goos":"...","goarch":"...","benchtime":"...",
#    "benchmarks":[{"package":"...","name":"...","iterations":N,
#                   "ns_per_op":F,"bytes_per_op":F,"allocs_per_op":F}, ...]}
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-100x}"
OUT="${OUT:-BENCH_$(date +%F).json}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" ./internal/... | tee "$raw" >&2

awk -v date="$(date +%F)" \
    -v gover="$(go env GOVERSION)" \
    -v goos="$(go env GOOS)" \
    -v goarch="$(go env GOARCH)" \
    -v benchtime="$BENCHTIME" '
BEGIN {
  printf "{\"date\":\"%s\",\"go\":\"%s\",\"goos\":\"%s\",\"goarch\":\"%s\",\"benchtime\":\"%s\",\"benchmarks\":[", date, gover, goos, goarch, benchtime
  n = 0
  pkg = ""
}
$1 == "pkg:" { pkg = $2 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  iters = $2
  ns = ""; bytes = ""; allocs = ""
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op") ns = $i
    if ($(i+1) == "B/op") bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
  }
  if (ns == "") next
  if (n++) printf ","
  printf "{\"package\":\"%s\",\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s", pkg, name, iters, ns
  if (bytes != "") printf ",\"bytes_per_op\":%s", bytes
  if (allocs != "") printf ",\"allocs_per_op\":%s", allocs
  printf "}"
}
END { print "]}" }
' "$raw" > "$OUT"

count="$(grep -o '"name"' "$OUT" | wc -l | tr -d ' ')"
echo "wrote $OUT ($count benchmarks)" >&2
