#!/usr/bin/env bash
# load.sh — run the fleet-scale load harness (cmd/mvcloudbench) with the
# pinned CI traffic mix and emit LOAD_<date>.json, the latency-SLO
# sibling of bench.sh's BENCH_<date>.json.
#
# Usage:
#   ./scripts/load.sh                 # full run, writes LOAD_YYYY-MM-DD.json
#   REQUESTS=2000 ./scripts/load.sh   # shorter run
#   OUT=/tmp/load.json ./scripts/load.sh
#
#   ./scripts/load.sh --compare [baseline.json]
#       Run fresh and diff against the baseline — by default the latest
#       committed LOAD_*.json. Exits non-zero when an endpoint's p95 more
#       than doubles or its cache-hit allocs/request grow past
#       baseline×1.5+2. Latency on shared runners is noisy, so CI runs
#       this step soft-fail; the alloc gate is the part that bites, and
#       it is what locks in the zero-alloc cache-hit fast path.
#
#   ./scripts/load.sh --overload
#       Run the overload scenario instead: a sweep flood against a server
#       whose heavy class has one worker and no queue. Exits non-zero
#       unless the flood is shed with 429s, advise keeps serving with a
#       bounded p95, and no solve goroutine survives the drain. This is
#       the overload smoke CI runs (soft) next to the SLO gate.
#
#   ./scripts/load.sh --cluster [N]
#       Run the cluster chaos scenario: a frontend + N-worker fleet
#       (default 3) under load while all but one worker is killed
#       mid-run. Exits non-zero unless every response was a success,
#       degraded answer, stale serve, or 429, and the whole topology
#       drained. CI runs this smoke soft-fail next to the overload one.
#
# The traffic profile is pinned (seed 1, 4 tenants × 2 schemas, 8:1:1
# advise:compare:sweep, hit-ratio 0.9, 64 concurrent clients) so runs
# are comparable commit over commit.
set -euo pipefail
cd "$(dirname "$0")/.."

COMPARE=0
OVERLOAD=0
CLUSTER=0
BASELINE=""
while [ $# -gt 0 ]; do
  case "$1" in
    --compare)
      COMPARE=1
      if [ $# -gt 1 ] && [ "${2#--}" = "$2" ]; then
        BASELINE="$2"
        shift
      fi
      ;;
    --overload)
      OVERLOAD=1
      ;;
    --cluster)
      CLUSTER=3
      if [ $# -gt 1 ] && [ "${2#--}" = "$2" ]; then
        CLUSTER="$2"
        shift
      fi
      ;;
    *)
      echo "load.sh: unknown argument $1" >&2
      exit 2
      ;;
  esac
  shift
done

DATE="$(date +%F)"

if [ "$CLUSTER" != 0 ]; then
  # The cluster run uses mvcloudbench's chaos scenario defaults (kill
  # all but one worker mid-run) and gates; scale and fleet size are
  # tunable.
  exec go run ./cmd/mvcloudbench -cluster "$CLUSTER" -seed 1     -requests "${REQUESTS:-600}" -date "$DATE"
fi

if [ "$OVERLOAD" = 1 ]; then
  # The overload run uses mvcloudbench's own scenario defaults (sweep
  # flood, 1-worker heavy class) and gates; only the scale is tunable.
  exec go run ./cmd/mvcloudbench -overload -seed 1 \
    -requests "${REQUESTS:-600}" -date "$DATE"
fi

REQUESTS="${REQUESTS:-5000}"
CONCURRENCY="${CONCURRENCY:-64}"

ARGS=(-seed 1 -tenants 4 -schemas 2 -mix 8:1:1 -hit-ratio 0.9
      -requests "$REQUESTS" -concurrency "$CONCURRENCY" -date "$DATE")

if [ "$COMPARE" = 1 ]; then
  if [ -z "$BASELINE" ]; then
    BASELINE="$(ls LOAD_*.json 2>/dev/null | sort | tail -1 || true)"
  fi
  if [ -z "$BASELINE" ] || [ ! -f "$BASELINE" ]; then
    echo "load.sh --compare: no committed LOAD_*.json baseline found" >&2
    exit 2
  fi
  echo "comparing against $BASELINE" >&2
  ARGS+=(-compare "$BASELINE")
  [ -n "${OUT:-}" ] && ARGS+=(-out "$OUT")
else
  OUT="${OUT:-LOAD_$DATE.json}"
  ARGS+=(-out "$OUT")
fi

go run ./cmd/mvcloudbench "${ARGS[@]}"
