module vmcloud

go 1.24
