// Tradeoff explorer: the paper's scenario MV3 — sweep the α weight between
// response time and monetary cost (Formula 15) and chart the resulting
// time/cost Pareto frontier (the paper's Figures 2–4 sketches).
package main

import (
	"fmt"
	"log"

	"vmcloud"
	"vmcloud/internal/report"
)

func main() {
	l, err := vmcloud.NewLattice(vmcloud.SalesSchema(), 200_000_000)
	if err != nil {
		log.Fatal(err)
	}
	w, err := vmcloud.SalesWorkload(l, 10)
	if err != nil {
		log.Fatal(err)
	}
	// A realistic frequency mix — executive dashboards (coarse queries)
	// run daily, analyst drill-downs weekly, auditor detail queries twice a
	// month — with heavy nightly maintenance. Views now differ in value
	// per dollar, so the α weight walks the selection along the frontier.
	for i := range w.Queries {
		switch {
		case i < 3:
			w.Queries[i].Frequency = 30
		case i < 6:
			w.Queries[i].Frequency = 8
		default:
			w.Queries[i].Frequency = 2
		}
	}
	adv, err := vmcloud.NewAdvisor(vmcloud.AdvisorConfig{
		Workload:        w,
		MaintenanceRuns: 10,
		UpdateRatio:     0.9,
	})
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("MV3 α sweep — 10-query sales workload, mixed frequencies",
		"α (weight on time)", "workload time", "monthly bill", "views", "time gain", "cost gain")
	for _, alpha := range []float64{0, 0.3, 0.5, 0.65, 0.7, 1} {
		rec, err := adv.AdviseTradeoff(alpha)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(
			fmt.Sprintf("%.2f", alpha),
			fmt.Sprintf("%.3fh", rec.Selection.Time.Hours()),
			rec.Selection.Bill.Total(),
			len(rec.Selection.Points),
			report.Percent(rec.TimeImprovement()),
			report.Percent(rec.CostImprovement()),
		)
	}
	fmt.Println(t)

	front, err := adv.ParetoFront(11)
	if err != nil {
		log.Fatal(err)
	}
	ft := report.NewTable("non-dominated (time, cost) outcomes",
		"α", "workload time", "monthly bill", "views")
	chart := report.NewBarChart("Pareto frontier — monthly bill per achievable time", "$")
	for _, p := range front {
		ft.AddRow(fmt.Sprintf("%.2f", p.Alpha), fmt.Sprintf("%.3fh", p.Time.Hours()), p.Cost, p.Views)
		chart.Add(fmt.Sprintf("%.2fh", p.Time.Hours()), p.Cost.Dollars())
	}
	fmt.Println(ft)
	fmt.Println(chart)
}
