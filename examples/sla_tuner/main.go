// SLA tuner: the paper's scenario MV2 — given ever-tighter response-time
// limits, find the cheapest view set meeting each one and report what the
// service level costs.
package main

import (
	"fmt"
	"log"
	"time"

	"vmcloud"
	"vmcloud/internal/report"
)

func main() {
	l, err := vmcloud.NewLattice(vmcloud.SalesSchema(), 200_000_000)
	if err != nil {
		log.Fatal(err)
	}
	w, err := vmcloud.SalesWorkload(l, 10)
	if err != nil {
		log.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 30
	}
	adv, err := vmcloud.NewAdvisor(vmcloud.AdvisorConfig{Workload: w})
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("MV2 deadline sweep — 10-query sales workload, daily",
		"time limit", "met", "achieved time", "monthly bill", "views")
	for _, hours := range []float64{32, 24, 16, 8, 4, 2, 0.5} {
		limit := time.Duration(hours * float64(time.Hour))
		rec, err := adv.AdviseDeadline(limit)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(
			fmt.Sprintf("%.1fh", hours),
			rec.Selection.Feasible,
			fmt.Sprintf("%.3fh", rec.Selection.Time.Hours()),
			rec.Selection.Bill.Total(),
			len(rec.Selection.Points),
		)
	}
	fmt.Println(t)
	fmt.Println("Rows marked met=false are best-effort: no view set reaches that limit on this fleet;")
	fmt.Println("scale the fleet up (AdvisorConfig.Instances) or relax the SLA.")
}
