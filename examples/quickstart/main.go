// Quickstart: size a sales warehouse in the cloud, ask the advisor which
// views to materialize under a monthly budget, and print the itemized
// comparison — the README's five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"vmcloud"
)

func main() {
	// A ~10 GB sales warehouse (200M facts at ≈50 B/row).
	l, err := vmcloud.NewLattice(vmcloud.SalesSchema(), 200_000_000)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's 10-query analytical workload, run daily.
	w, err := vmcloud.SalesWorkload(l, 10)
	if err != nil {
		log.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 30
	}

	// Default setting: AWS-2012 tariff, five small instances.
	adv, err := vmcloud.NewAdvisor(vmcloud.AdvisorConfig{Workload: w})
	if err != nil {
		log.Fatal(err)
	}

	// Scenario MV1: the fastest workload money ≤ $25/month can buy.
	rec, err := adv.AdviseBudget(vmcloud.Dollars(25))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rec.Render())
	fmt.Printf("\ncandidates considered: %d\n", len(adv.Candidates))
}
