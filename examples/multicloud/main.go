// Multicloud: compare the same workload and view-selection problem across
// provider tariffs — the multi-CSP extension the paper lists as future
// work (Section 8). Different tier tables, billing granularities and
// instance prices shift both the bill and the optimal view set.
package main

import (
	"fmt"
	"log"
	"sort"

	"vmcloud"
	"vmcloud/internal/report"
)

func main() {
	l, err := vmcloud.NewLattice(vmcloud.SalesSchema(), 200_000_000)
	if err != nil {
		log.Fatal(err)
	}
	w, err := vmcloud.SalesWorkload(l, 10)
	if err != nil {
		log.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 30
	}

	providers := vmcloud.Providers()
	names := make([]string, 0, len(providers))
	for name := range providers {
		names = append(names, name)
	}
	sort.Strings(names)

	t := report.NewTable("same workload, three tariffs — MV3 α=0.5 recommendation",
		"provider", "billing", "baseline bill", "bill with views", "workload time", "views", "cost gain")
	chart := report.NewBarChart("monthly bill with recommended views", "$")
	for _, name := range names {
		prov := providers[name]
		adv, err := vmcloud.NewAdvisor(vmcloud.AdvisorConfig{
			Workload:     w,
			Provider:     &prov,
			InstanceType: "small",
			Instances:    5,
		})
		if err != nil {
			log.Fatal(err)
		}
		rec, err := adv.AdviseTradeoff(0.5)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(
			prov.Name,
			prov.Compute.Granularity,
			rec.BaselineBill.Total(),
			rec.Selection.Bill.Total(),
			fmt.Sprintf("%.3fh", rec.Selection.Time.Hours()),
			len(rec.Selection.Points),
			report.Percent(rec.CostImprovement()),
		)
		chart.Add(prov.Name, rec.Selection.Bill.Total().Dollars())
	}
	fmt.Println(t)
	fmt.Println(chart)
	fmt.Println("Note how the hour-rounded tariff (aws-2012) penalizes many small jobs,")
	fmt.Println("while per-second billing (nimbus) prices exactly the work done.")
}
