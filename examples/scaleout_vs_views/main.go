// Scale-out vs views: the paper's introductory framing made concrete.
// For each fleet size, compare the no-view configuration against the
// optimizer's view set, then answer the operational question: to bring the
// daily workload under a deadline, is it cheaper to rent more instances or
// to materialize views?
package main

import (
	"fmt"
	"log"
	"time"

	"vmcloud"
	"vmcloud/internal/report"
	"vmcloud/internal/scaling"
)

func main() {
	l, err := vmcloud.NewLattice(vmcloud.SalesSchema(), 200_000_000)
	if err != nil {
		log.Fatal(err)
	}
	w, err := vmcloud.SalesWorkload(l, 10)
	if err != nil {
		log.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 30
	}

	opts, err := scaling.Sweep(scaling.Config{FleetSizes: []int{2, 5, 10, 20, 40}}, w)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("fleet sweep — 10-query sales workload, daily",
		"instances", "views", "workload time", "monthly bill")
	for _, o := range opts {
		label := "—"
		if o.WithViews {
			label = fmt.Sprintf("%d", o.Views)
		}
		t.AddRow(o.Instances, label, fmt.Sprintf("%.2fh", o.Time.Hours()), o.Bill.Total())
	}
	fmt.Println(t)

	deadline := 16 * time.Hour
	fmt.Printf("Question: the month's workload must fit in %v of cluster time.\n\n", deadline)
	without, with := scaling.Crossover(opts, deadline)
	if without > 0 {
		fmt.Printf("  scale-out answer: %d view-less instances\n", without)
	} else {
		fmt.Println("  scale-out answer: no swept fleet meets it without views")
	}
	if with > 0 {
		fmt.Printf("  views answer:     %d instances with materialized views\n", with)
	}
	best, ok := scaling.CheapestMeeting(opts, deadline)
	if ok {
		fmt.Printf("  cheapest overall: %d instances, views=%v, %v/month (%.2fh)\n",
			best.Instances, best.WithViews, best.Bill.Total(), best.Time.Hours())
	}
}
