// Large schema: go beyond the paper's 16-cuboid sales lattice. A
// 4-dimension × 4-level synthetic schema induces 256 cuboids; at that
// size the linearized knapsack's double-counting starts to cost real
// money, so this walkthrough asks for the metaheuristic search solver
// (solver "search", fixed seed — identical seeds always reproduce the
// identical recommendation) and compares both engines' exact outcomes.
package main

import (
	"fmt"
	"log"

	"vmcloud"
)

func main() {
	// A 4-dimension warehouse: 256 potential views instead of 16.
	sch, err := vmcloud.SyntheticSchema(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	l, err := vmcloud.NewLattice(sch, 1_000_000_000)
	if err != nil {
		log.Fatal(err)
	}

	// A reproducible 20-query analytical workload drawn across the lattice.
	w, err := vmcloud.RandomWorkload(l, 20, 8, 1)
	if err != nil {
		log.Fatal(err)
	}

	solve := func(solver string) vmcloud.Recommendation {
		adv, err := vmcloud.NewAdvisor(vmcloud.AdvisorConfig{
			Schema:   sch,
			FactRows: 1_000_000_000,
			Workload: w,
			// A generous candidate pool: on a 256-cuboid lattice the
			// shortlist itself outgrows what the paper's DP was tuned for.
			CandidateBudget: 32,
			Solver:          solver,
			Seed:            42,
		})
		if err != nil {
			log.Fatal(err)
		}
		rec, err := adv.AdviseBudget(vmcloud.Dollars(140))
		if err != nil {
			log.Fatal(err)
		}
		return rec
	}

	knap := solve(vmcloud.SolverKnapsack)
	srch := solve(vmcloud.SolverSearch)

	fmt.Println("— linearized knapsack —")
	fmt.Print(knap.Render())
	fmt.Println("\n— metaheuristic search (seed 42) —")
	fmt.Print(srch.Render())
	fmt.Printf("\nsearch vs knapsack: %.3fh vs %.3fh workload time under the same $140 budget\n",
		srch.Selection.Time.Hours(), knap.Selection.Time.Hours())
}
