// Maintenance drill: the paper's Formula 11/12 made concrete. Materialize
// views over a generated sales warehouse, stream a week of nightly insert
// batches through incremental view maintenance, and compare the measured
// refresh work against full recomputation — then price both strategies on
// the AWS-2012 tariff.
package main

import (
	"fmt"
	"log"

	"vmcloud/internal/cluster"
	"vmcloud/internal/datagen"
	"vmcloud/internal/engine"
	"vmcloud/internal/pricing"
	"vmcloud/internal/report"
	"vmcloud/internal/units"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

func main() {
	// A 1/1000-scale warehouse: 200k facts stand in for 200M (10 GB).
	ds, err := datagen.GenerateSales(datagen.Config{Rows: 200_000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	ex, err := engine.NewExecutor(ds)
	if err != nil {
		log.Fatal(err)
	}
	w, err := workload.Sales(ex.Lat, 10)
	if err != nil {
		log.Fatal(err)
	}
	cands, err := views.GenerateCandidates(ex.Lat, w, 8)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cands {
		if _, err := ex.Materialize(c.Point); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("materialized %d views over %d facts\n\n", len(cands), ds.Facts.Rows())

	// The cluster prices measured bytes as if at full 10 GB scale.
	cl, err := cluster.New(pricing.AWS2012(), "small", 5)
	if err != nil {
		log.Fatal(err)
	}
	cl.DataScale = 1000

	t := report.NewTable("one week of nightly batches (≈1% of base each)",
		"night", "batch rows", "incremental scan", "recompute scan", "advantage")
	var incTotal, recTotal units.DataSize
	for night := 1; night <= 7; night++ {
		batch, err := datagen.GenerateInsertBatch(ds, 2_000, int64(night))
		if err != nil {
			log.Fatal(err)
		}
		// Incremental: aggregate just the delta into each view.
		stats, err := views.ApplyInsertBatch(ex, batch)
		if err != nil {
			log.Fatal(err)
		}
		incBytes := stats.BytesScanned

		// Recompute: what rebuilding every view from base would scan now.
		recBytes := ds.Schema.RowBytes.MulInt(int64(ds.Facts.Rows() * len(cands)))

		incTotal += incBytes
		recTotal += recBytes
		t.AddRow(night, batch.Rows(), incBytes, recBytes,
			fmt.Sprintf("%.0f×", float64(recBytes)/float64(incBytes)))
	}
	fmt.Println(t)

	incCost := cl.CostForWork(incTotal)
	recCost := cl.CostForWork(recTotal)
	fmt.Printf("priced at full scale on %s:\n", cl)
	fmt.Printf("  incremental maintenance: %v for the week (%v cloud time)\n",
		incCost, cl.TimeFor(incTotal).Round(1e9))
	fmt.Printf("  full recomputation:      %v for the week (%v cloud time)\n",
		recCost, cl.TimeFor(recTotal).Round(1e9))
	fmt.Printf("  → incremental maintenance costs %.1f%% of recomputation\n",
		100*incCost.Dollars()/recCost.Dollars())
}
