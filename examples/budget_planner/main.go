// Budget planner: sweep monthly budgets for the paper's scenario MV1 and
// show how response time buys down as the budget grows — the marginal
// value of each extra dollar spent on materialized views.
package main

import (
	"fmt"
	"log"

	"vmcloud"
	"vmcloud/internal/report"
)

func main() {
	l, err := vmcloud.NewLattice(vmcloud.SalesSchema(), 200_000_000)
	if err != nil {
		log.Fatal(err)
	}
	w, err := vmcloud.SalesWorkload(l, 10)
	if err != nil {
		log.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 30
	}
	adv, err := vmcloud.NewAdvisor(vmcloud.AdvisorConfig{Workload: w})
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("MV1 budget sweep — 10-query sales workload, daily",
		"budget", "feasible", "workload time", "monthly bill", "views", "time improvement")
	chart := report.NewBarChart("response time by budget", "h")
	for _, budget := range []float64{10, 15, 20, 25, 35, 50} {
		rec, err := adv.AdviseBudget(vmcloud.Dollars(budget))
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(
			vmcloud.Dollars(budget),
			rec.Selection.Feasible,
			fmt.Sprintf("%.3fh", rec.Selection.Time.Hours()),
			rec.Selection.Bill.Total(),
			len(rec.Selection.Points),
			report.Percent(rec.TimeImprovement()),
		)
		chart.Add(fmt.Sprintf("$%g", budget), rec.Selection.Time.Hours())
	}
	fmt.Println(t)
	fmt.Println(chart)
}
