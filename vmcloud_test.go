package vmcloud

import (
	"strings"
	"testing"
	"time"
)

// TestQuickstart exercises the documented facade path end to end.
func TestQuickstart(t *testing.T) {
	l, err := NewLattice(SalesSchema(), 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := SalesWorkload(l, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 30
	}
	adv, err := NewAdvisor(AdvisorConfig{Workload: w})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.AdviseBudget(Dollars(50))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Selection.Feasible {
		t.Fatalf("generous budget infeasible: %s", rec.Render())
	}
	if rec.TimeImprovement() <= 0 {
		t.Errorf("no improvement: %s", rec.Render())
	}
	if !strings.Contains(rec.Render(), "materialize:") {
		t.Error("render missing recommendation")
	}
}

func TestFacadeHelpers(t *testing.T) {
	if Dollars(1.08).String() != "$1.08" {
		t.Errorf("Dollars = %v", Dollars(1.08))
	}
	m, err := ParseMoney("$2.40")
	if err != nil || m != Dollars(2.4) {
		t.Errorf("ParseMoney = %v, %v", m, err)
	}
	if AWS2012().Name != "aws-2012" {
		t.Error("AWS2012 wiring wrong")
	}
	if len(Providers()) < 3 {
		t.Error("built-in catalog too small")
	}
	if TB/GB != 1024 || GB/MB != 1024 {
		t.Error("size constants wrong")
	}
}

func TestFacadeDeadlineAndPareto(t *testing.T) {
	l, err := NewLattice(SalesSchema(), 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := SalesWorkload(l, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 30
	}
	adv, err := NewAdvisor(AdvisorConfig{Workload: w})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.AdviseDeadline(4 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Selection.Feasible && rec.Selection.Time > 4*time.Hour {
		t.Error("deadline violated")
	}
	front, err := adv.ParetoFront(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Error("empty Pareto front")
	}
}
