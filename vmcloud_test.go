package vmcloud

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestQuickstart exercises the documented facade path end to end.
func TestQuickstart(t *testing.T) {
	l, err := NewLattice(SalesSchema(), 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := SalesWorkload(l, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 30
	}
	adv, err := NewAdvisor(AdvisorConfig{Workload: w})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.AdviseBudget(Dollars(50))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Selection.Feasible {
		t.Fatalf("generous budget infeasible: %s", rec.Render())
	}
	if rec.TimeImprovement() <= 0 {
		t.Errorf("no improvement: %s", rec.Render())
	}
	if !strings.Contains(rec.Render(), "materialize:") {
		t.Error("render missing recommendation")
	}
}

func TestFacadeHelpers(t *testing.T) {
	if Dollars(1.08).String() != "$1.08" {
		t.Errorf("Dollars = %v", Dollars(1.08))
	}
	m, err := ParseMoney("$2.40")
	if err != nil || m != Dollars(2.4) {
		t.Errorf("ParseMoney = %v, %v", m, err)
	}
	if AWS2012().Name != "aws-2012" {
		t.Error("AWS2012 wiring wrong")
	}
	if len(Providers()) < 3 {
		t.Error("built-in catalog too small")
	}
	if TB/GB != 1024 || GB/MB != 1024 {
		t.Error("size constants wrong")
	}
}

func TestFacadeDeadlineAndPareto(t *testing.T) {
	l, err := NewLattice(SalesSchema(), 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := SalesWorkload(l, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 30
	}
	adv, err := NewAdvisor(AdvisorConfig{Workload: w})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.AdviseDeadline(4 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Selection.Feasible && rec.Selection.Time > 4*time.Hour {
		t.Error("deadline violated")
	}
	front, err := adv.ParetoFront(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Error("empty Pareto front")
	}
}

// ExampleNewAdvisor is the package quick start: build the paper's sales
// lattice and workload, wire an advisor with the experimental defaults,
// and solve scenario MV1 under a $50 monthly budget.
func ExampleNewAdvisor() {
	l, _ := NewLattice(SalesSchema(), 200_000_000)
	w, _ := SalesWorkload(l, 10)
	for i := range w.Queries {
		w.Queries[i].Frequency = 30
	}
	adv, _ := NewAdvisor(AdvisorConfig{Workload: w})
	rec, _ := adv.AdviseBudget(Dollars(50))
	fmt.Println(rec.Scenario)
	fmt.Println("feasible:", rec.Selection.Feasible)
	fmt.Println("views:", len(rec.ViewNames))
	// Output:
	// MV1 (budget limit)
	// feasible: true
	// views: 8
}

// ExampleDollars shows the exact micro-dollar currency arithmetic used
// throughout the cost models.
func ExampleDollars() {
	fmt.Println(Dollars(1.08))
	fmt.Println(Dollars(0.5).Add(Dollars(0.7)))
	// Output:
	// $1.08
	// $1.20
}

// ExampleParseMoney parses tariff-style price strings.
func ExampleParseMoney() {
	m, _ := ParseMoney("$0.12")
	fmt.Println(m.MulFloat(24 * 5)) // five instances for a day
	// Output:
	// $14.40
}

// ExampleCompare fans one advisory problem out across the whole built-in
// provider catalog and reports which cloud wins each scenario.
func ExampleCompare() {
	l, _ := NewLattice(SalesSchema(), 10_000_000)
	w, _ := SalesWorkload(l, 5)
	comp, _ := Compare(CompareRequest{
		Workload: w,
		FactRows: 10_000_000,
		Budget:   Dollars(25),
		Limit:    4 * time.Hour,
	})
	fmt.Println("configurations:", len(comp.Configs))
	for _, win := range comp.Winners {
		fmt.Printf("%s winner: %s\n", win.Scenario, win.Provider)
	}
	// Output:
	// configurations: 5
	// mv1 winner: nimbus
	// mv2 winner: nimbus
	// mv3 winner: nimbus
}

func ExampleSweep() {
	l, _ := NewLattice(SalesSchema(), 10_000_000)
	w, _ := SalesWorkload(l, 5)
	sw, _ := Sweep(SweepRequest{
		Workload:   w,
		FactRows:   10_000_000,
		Budget:     Dollars(25),
		FleetSizes: []int{3, 5},
	})
	fmt.Println("scenario:", sw.Scenario)
	fmt.Println("cells:", len(sw.Cells))
	fmt.Println("best:", sw.Best.Provider)
	// Output:
	// scenario: mv1
	// cells: 10
	// best: nimbus
}
